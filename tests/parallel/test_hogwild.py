"""Shared-memory Hogwild trainer: determinism, quality, durability, chaos.

The contract under test (ISSUE 2):

- ``workers=1`` produces embeddings bitwise-identical to the serial
  trainer (both through ``train_hogwild`` directly — which exercises the
  shared-memory matrices — and through the ``train_embeddings`` facade);
- multi-worker training still learns the planted communities and lands
  near the serial loss;
- checkpoint–resume under the shared-memory mode stays bitwise-identical
  and refuses a fingerprint whose worker count changed;
- no shared-memory segment outlives a run — normal exit, exception, or
  an injected worker death (``os._exit`` inside the pool).
"""

import numpy as np
import pytest

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.ml import KMeans, pairwise_precision_recall
from repro.parallel.hogwild import (
    hogwild_epoch_task,
    hogwild_supported,
    train_hogwild,
)
from repro.pipeline import ExecutionContext
from repro.resilience.chaos import FaultInjector
from repro.resilience.checkpoint import CheckpointManager
from repro.walks.engine import RandomWalkConfig, generate_walks

from tests.parallel.test_shm import shm_entries

pytestmark = pytest.mark.skipif(
    not hogwild_supported(), reason="platform has no shared memory"
)


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=90, groups=3, alpha=0.7, inter_edges=10, seed=0)


@pytest.fixture(scope="module")
def corpus(graph):
    return generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=5)
    )


TRAIN_CFG = dict(dim=12, epochs=4, batch_size=128, seed=3, early_stop=False)


@pytest.fixture()
def no_leaks():
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestWorkersOneBitwise:
    def test_hogwild_matches_serial_negative_sampling(self, corpus, no_leaks):
        config = TrainConfig(**TRAIN_CFG)
        serial = train_embeddings(corpus, config)
        hogwild = train_hogwild(corpus, config)
        np.testing.assert_array_equal(serial.vectors, hogwild.vectors)
        assert serial.loss_history == hogwild.loss_history

    def test_hogwild_matches_serial_hierarchical(self, corpus, no_leaks):
        config = TrainConfig(**TRAIN_CFG, output_layer="hierarchical")
        serial = train_embeddings(corpus, config)
        hogwild = train_hogwild(corpus, config)
        np.testing.assert_array_equal(serial.vectors, hogwild.vectors)

    def test_facade_workers_one_is_serial(self, corpus):
        config = TrainConfig(**TRAIN_CFG)
        assert np.array_equal(
            train_embeddings(corpus, config).vectors,
            train_embeddings(corpus, TrainConfig(**TRAIN_CFG, workers=1)).vectors,
        )


class TestMultiWorker:
    def test_trains_and_cleans_up(self, corpus, no_leaks):
        config = TrainConfig(**TRAIN_CFG, workers=2)
        result = train_embeddings(corpus, config)
        assert result.epochs_run == config.epochs
        assert result.vectors.shape == (corpus.num_vertices, config.dim)
        assert np.all(np.isfinite(result.vectors))
        # Learns: the loss must drop substantially from the first epoch.
        assert result.loss_history[-1] < 0.9 * result.loss_history[0]

    def test_loss_near_serial_and_communities_recovered(
        self, graph, corpus, no_leaks
    ):
        cfg = dict(TRAIN_CFG, epochs=8)
        serial = train_embeddings(corpus, TrainConfig(**cfg))
        hogwild = train_embeddings(corpus, TrainConfig(**cfg, workers=2))
        # Hogwild races cost a little per-epoch progress; it must stay in
        # the same regime as serial training (equal-or-better is typical
        # on multicore hardware, a small gap is acceptable under
        # single-core interleaving).
        assert hogwild.loss_history[-1] <= serial.loss_history[-1] * 1.25
        # Table-1 gate: k-means on the Hogwild embedding still recovers
        # the planted communities.
        truth = graph.vertex_labels("community")
        km = KMeans(3, n_init=10, seed=0).fit(hogwild.vectors)
        precision, recall = pairwise_precision_recall(truth, km.labels)
        assert precision >= 0.9
        assert recall >= 0.9

    def test_objective_validation_still_applies(self):
        with pytest.raises(ValueError, match="streaming"):
            TrainConfig(streaming=True, workers=2)
        with pytest.raises(ValueError, match="workers"):
            TrainConfig(workers=0)


class _CrashAfterEpoch:
    """Epoch callback that raises once the given epoch completes.

    Fires *after* the snapshot, so the checkpoint on disk is exactly what
    an OOM-killed run would have left behind.
    """

    def __init__(self, epoch: int) -> None:
        self.crash_epoch = epoch

    def __call__(self, epoch: int, mean_loss: float) -> None:
        if epoch == self.crash_epoch:
            raise RuntimeError(f"injected crash after epoch {epoch}")


class TestCheckpointResume:
    def test_resume_workers_one_is_bitwise_identical(self, corpus, tmp_path, no_leaks):
        config = TrainConfig(**TRAIN_CFG)
        baseline = train_hogwild(corpus, config)

        with pytest.raises(RuntimeError, match="injected crash"):
            train_hogwild(
                corpus,
                config,
                context=ExecutionContext(checkpoint_dir=tmp_path),
                epoch_callback=_CrashAfterEpoch(1),
            )
        assert CheckpointManager(tmp_path).exists("trainer")

        # Resuming replays the remaining epochs' exact RNG streams.
        resumed = train_hogwild(
            corpus,
            config,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        np.testing.assert_array_equal(baseline.vectors, resumed.vectors)
        assert resumed.loss_history == baseline.loss_history

    def test_resume_refuses_changed_worker_count(self, corpus, tmp_path, no_leaks):
        train_embeddings(
            corpus,
            TrainConfig(**TRAIN_CFG, workers=2),
            context=ExecutionContext(checkpoint_dir=tmp_path),
        )
        with pytest.raises(ValueError, match="different configuration"):
            train_embeddings(
                corpus,
                TrainConfig(**TRAIN_CFG),
                context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
            )

    def test_multiworker_resume_continues_epochs(self, corpus, tmp_path, no_leaks):
        config = TrainConfig(**TRAIN_CFG, workers=2)
        with pytest.raises(RuntimeError, match="injected crash"):
            train_embeddings(
                corpus,
                config,
                context=ExecutionContext(checkpoint_dir=tmp_path),
                epoch_callback=_CrashAfterEpoch(1),
            )
        resumed = train_embeddings(
            corpus,
            config,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        assert resumed.epochs_run == config.epochs
        assert len(resumed.loss_history) == config.epochs
        assert np.all(np.isfinite(resumed.vectors))


class TestChaos:
    def test_killed_worker_recovers_and_leaves_no_segments(
        self, corpus, tmp_path, no_leaks
    ):
        # The first epoch task to run inside a pool worker hard-exits
        # (os._exit, like an OOM kill); the once-marker lets the retried
        # pool pass succeed. Training must complete and unlink everything.
        injector = FaultInjector(
            hogwild_epoch_task,
            exit_on_calls={1},
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        config = TrainConfig(**TRAIN_CFG, workers=2)
        result = train_hogwild(corpus, config, task_fn=injector)
        assert (tmp_path / "fired").exists(), "fault never fired"
        assert result.epochs_run == config.epochs
        assert np.all(np.isfinite(result.vectors))

    def test_exception_mid_training_unlinks_segments(self, corpus):
        before = shm_entries()

        def explode(epoch, loss):
            raise RuntimeError("callback boom")

        with pytest.raises(RuntimeError, match="callback boom"):
            train_hogwild(
                corpus,
                TrainConfig(**TRAIN_CFG, workers=2),
                epoch_callback=explode,
            )
        assert shm_entries() - before == set()
