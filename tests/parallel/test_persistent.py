"""Tests for the persistent fork-once worker pool."""

import os
import threading
import time

import pytest

from repro.parallel.persistent import (
    PersistentPool,
    PersistentPoolBroken,
    get_pool,
    persistent_pool_enabled,
    shutdown_pools,
)

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pool requires fork"
)


def _double(x):
    return 2 * x


def _pid(_):
    return os.getpid()


def _raise_if_marked(item):
    value, bad = item
    if value in bad:
        raise ValueError(f"item {value} rejected")
    return value


def _exit_unless_marker(item):
    """Hard-exit (like an OOM kill) once; the marker makes retries pass."""
    value, marker = item
    if value == "die" and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return value


def _exit_always(item):
    if item == "die":
        os._exit(1)
    return item


def _sleep_then_double(x):
    time.sleep(0.05)
    return 2 * x


@pytest.fixture()
def pool():
    p = PersistentPool(2)
    yield p
    p.shutdown()


class TestMap:
    def test_results_in_input_order(self, pool):
        items = list(range(20))
        assert pool.map(_double, items) == [2 * x for x in items]

    def test_reuses_the_same_processes_across_maps(self, pool):
        first = set(pool.map(_pid, range(8)))
        second = set(pool.map(_pid, range(8)))
        assert first == second
        assert os.getpid() not in first
        assert len(first) <= 2

    def test_smallest_index_exception_wins(self, pool):
        items = [(i, (3, 7)) for i in range(10)]
        with pytest.raises(ValueError, match="item 3 rejected"):
            pool.map(_raise_if_marked, items)

    def test_map_survives_a_raised_map(self, pool):
        with pytest.raises(ValueError):
            pool.map(_raise_if_marked, [(i, (0,)) for i in range(4)])
        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]


class TestWorkerDeath:
    def test_killed_worker_is_respawned_and_item_retried(self, pool, tmp_path):
        marker = str(tmp_path / "fired")
        items = [(x, marker) for x in [0, 1, "die", 2, 3]]
        got = pool.map(_exit_unless_marker, items)
        assert got == [0, 1, "die", 2, 3]
        assert os.path.exists(marker), "fault never fired"
        # The pool is healthy again afterwards.
        assert pool.map(_double, [5]) == [10]

    def test_repeated_deaths_break_the_pool_with_partials(self, pool):
        items = [0, 1, 2, "die"]
        with pytest.raises(PersistentPoolBroken) as exc_info:
            pool.map(_exit_always, items, max_attempts=2)
        partial = exc_info.value.partial
        assert partial, "expected completed items to be preserved"
        for idx, value in partial.items():
            assert value == items[idx]
        assert pool.map(_double, [5]) == [10]


class TestLifecycle:
    def test_shutdown_is_idempotent_and_closes_maps(self):
        p = PersistentPool(2)
        assert p.map(_double, [1]) == [2]
        p.shutdown()
        p.shutdown()
        assert not p.alive
        with pytest.raises(PersistentPoolBroken):
            p.map(_double, [1])

    def test_shutdown_from_another_thread_mid_map(self):
        """The pressure watchdog shuts pools down while a map is live.

        The map must surface ``PersistentPoolBroken`` (so callers fall
        back down the executor ladder) rather than hanging or leaking
        respawned workers that outlive the pool.
        """
        p = PersistentPool(2)
        killer = threading.Timer(0.1, p.shutdown)
        killer.start()
        try:
            with pytest.raises(PersistentPoolBroken):
                # Enough slow items that the shutdown lands mid-map.
                p.map(_sleep_then_double, list(range(200)))
        finally:
            killer.cancel()
            p.shutdown()
        # No respawned orphans: every worker process must be reaped.
        deadline = time.monotonic() + 5.0
        for worker in p._pool:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not worker.process.is_alive()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            PersistentPool(0)

    def test_env_escape_hatch_disables_get_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_POOL", "0")
        assert not persistent_pool_enabled()
        assert get_pool(2) is None

    def test_registry_returns_live_pool_then_replaces_dead_one(self):
        try:
            p = get_pool(2)
            assert p is not None and p.alive
            assert get_pool(2) is p
            p.shutdown()
            replacement = get_pool(2)
            assert replacement is not None and replacement is not p
            assert replacement.map(_double, [4]) == [8]
        finally:
            shutdown_pools()

    def test_shutdown_pools_clears_registry(self):
        p = get_pool(2)
        assert p is not None
        shutdown_pools()
        assert not p.alive
