"""Tests for chunking and parallel map (including failure recovery)."""

import logging
import os
import warnings

import numpy as np
import pytest

from repro.parallel.pool import (
    POOL_RETRY_POLICY,
    chunk_bounds,
    default_workers,
    parallel_map,
    resolve_workers,
)
from repro.resilience.chaos import FaultInjector, InjectedFault
from repro.resilience.retry import RetryPolicy


def square(x):
    return x * x


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_more_chunks_than_items(self):
        bounds = chunk_bounds(2, 5)
        assert bounds == [(0, 1), (1, 2)]

    def test_zero_total(self):
        assert chunk_bounds(0, 3) == []

    def test_covers_range_exactly(self):
        for total, chunks in [(17, 4), (100, 7), (3, 3)]:
            bounds = chunk_bounds(total, chunks)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == total
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_path(self):
        out = parallel_map(square, list(range(8)), workers=2)
        assert out == [x * x for x in range(8)]

    def test_single_item_stays_serial(self):
        assert parallel_map(square, [5], workers=4) == [25]

    def test_order_preserved(self):
        out = parallel_map(square, list(range(20)), workers=3)
        assert out == [x * x for x in range(20)]

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], workers=1)


class TestWorkerCrashRecovery:
    """Regression: a worker dying mid-map used to raise
    ``BrokenProcessPool`` and lose every completed chunk."""

    def test_killed_worker_is_retried_and_results_stay_ordered(self, tmp_path):
        # Item 3 hard-kills its worker (os._exit — same as OOM/SIGKILL)
        # exactly once; the retry pass must recompute only what's missing
        # and return complete, ordered results.
        chaotic = FaultInjector(
            square, exit_items=(3,), once_marker=tmp_path / "fired"
        )
        out = parallel_map(chaotic, list(range(8)), workers=2)
        assert out == [x * x for x in range(8)]
        assert (tmp_path / "fired").exists()  # the fault really fired

    def test_persistently_broken_pool_degrades_to_serial(self, caplog):
        # Every worker process dies on its first call; after the retry
        # budget the map must fall back to in-process execution with a
        # structured warning event instead of crashing.
        chaotic = FaultInjector(
            square, exit_on_calls=range(1, 1000), only_in_subprocess=True
        )
        fast = RetryPolicy(
            max_attempts=2,
            base_delay=0.0,
            jitter=0.0,
            retry_on=POOL_RETRY_POLICY.retry_on,
        )
        with caplog.at_level(logging.WARNING, logger="repro.parallel.pool"):
            out = parallel_map(chaotic, list(range(6)), workers=2, retry=fast)
        assert out == [x * x for x in range(6)]
        events = [getattr(r, "repro_event", None) for r in caplog.records]
        assert "pool.serial_fallback" in events

    def test_work_function_exception_still_propagates(self, tmp_path):
        chaotic = FaultInjector(square, fail_items=(2,))
        with pytest.raises(InjectedFault):
            parallel_map(chaotic, list(range(5)), workers=2)

    def test_no_warning_on_healthy_pool(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = parallel_map(square, list(range(8)), workers=2)
        assert out == [x * x for x in range(8)]


class TestDefaultWorkers:
    def test_positive(self):
        assert default_workers() >= 1

    def test_respects_cpu_affinity(self, monkeypatch):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1})
        assert default_workers() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        def broken(pid):
            raise OSError("no affinity")

        monkeypatch.setattr(os, "sched_getaffinity", broken, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert default_workers() == 7


class TestResolveWorkers:
    """``resolve_workers`` is the single auto-detect entry point: every
    worker-count knob (CLI flags, engine defaults) routes through it."""

    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1

    def test_none_means_auto(self):
        assert resolve_workers(None) == default_workers()

    def test_zero_and_negative_mean_auto(self):
        assert resolve_workers(0) == default_workers()
        assert resolve_workers(-1) == default_workers()

    def test_returns_int(self):
        assert isinstance(resolve_workers(np.int64(2)), int)
