"""Tests for chunking and parallel map."""

import pytest

from repro.parallel.pool import chunk_bounds, default_workers, parallel_map


def square(x):
    return x * x


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_more_chunks_than_items(self):
        bounds = chunk_bounds(2, 5)
        assert bounds == [(0, 1), (1, 2)]

    def test_zero_total(self):
        assert chunk_bounds(0, 3) == []

    def test_covers_range_exactly(self):
        for total, chunks in [(17, 4), (100, 7), (3, 3)]:
            bounds = chunk_bounds(total, chunks)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == total
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_path(self):
        out = parallel_map(square, list(range(8)), workers=2)
        assert out == [x * x for x in range(8)]

    def test_single_item_stays_serial(self):
        assert parallel_map(square, [5], workers=4) == [25]

    def test_order_preserved(self):
        out = parallel_map(square, list(range(20)), workers=3)
        assert out == [x * x for x in range(20)]

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], workers=1)


class TestDefaultWorkers:
    def test_positive(self):
        assert default_workers() >= 1
