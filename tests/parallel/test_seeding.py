"""Tests for deterministic seed spawning."""

import numpy as np
import pytest

from repro.parallel.seeding import spawn_generators, spawn_seeds


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_reproducible(self):
        a = [s.generate_state(2).tolist() for s in spawn_seeds(42, 3)]
        b = [s.generate_state(2).tolist() for s in spawn_seeds(42, 3)]
        assert a == b

    def test_children_differ(self):
        states = [tuple(s.generate_state(2)) for s in spawn_seeds(0, 10)]
        assert len(set(states)) == 10

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_seed_sequence_accepted(self):
        parent = np.random.SeedSequence(7)
        assert len(spawn_seeds(parent, 2)) == 2


class TestSpawnGenerators:
    def test_independent_streams(self):
        g1, g2 = spawn_generators(0, 2)
        a = g1.random(1000)
        b = g2.random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_reproducible(self):
        a = spawn_generators(3, 2)[1].random(5)
        b = spawn_generators(3, 2)[1].random(5)
        np.testing.assert_array_equal(a, b)
