"""Property-based tests for ML metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy,
    adjusted_rand_index,
    normalized_mutual_information,
    pairwise_f1,
    pairwise_precision_recall,
    purity,
)

labelings = st.integers(2, 40).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
    )
)


@given(labelings)
@settings(max_examples=80, deadline=None)
def test_precision_recall_bounds(pair):
    truth, pred = np.asarray(pair[0]), np.asarray(pair[1])
    p, r = pairwise_precision_recall(truth, pred)
    assert 0.0 <= p <= 1.0
    assert 0.0 <= r <= 1.0


@given(labelings)
@settings(max_examples=80, deadline=None)
def test_perfect_prediction_metrics(pair):
    truth = np.asarray(pair[0])
    p, r = pairwise_precision_recall(truth, truth)
    assert p == 1.0 and r == 1.0
    assert accuracy(truth, truth) == 1.0
    assert purity(truth, truth) == 1.0


@given(labelings)
@settings(max_examples=80, deadline=None)
def test_metrics_invariant_to_label_renaming(pair):
    truth, pred = np.asarray(pair[0]), np.asarray(pair[1])
    renamed = pred + 100
    assert pairwise_precision_recall(truth, pred) == pairwise_precision_recall(
        truth, renamed
    )
    assert np.isclose(
        adjusted_rand_index(truth, pred), adjusted_rand_index(truth, renamed)
    )
    assert np.isclose(
        normalized_mutual_information(truth, pred),
        normalized_mutual_information(truth, renamed),
    )


@given(labelings)
@settings(max_examples=80, deadline=None)
def test_f1_between_precision_and_recall(pair):
    truth, pred = np.asarray(pair[0]), np.asarray(pair[1])
    p, r = pairwise_precision_recall(truth, pred)
    f1 = pairwise_f1(truth, pred)
    lo, hi = min(p, r), max(p, r)
    assert lo - 1e-12 <= f1 <= hi + 1e-12


@given(labelings)
@settings(max_examples=80, deadline=None)
def test_ari_nmi_bounds(pair):
    truth, pred = np.asarray(pair[0]), np.asarray(pair[1])
    assert adjusted_rand_index(truth, pred) <= 1.0 + 1e-12
    nmi = normalized_mutual_information(truth, pred)
    assert -1e-12 <= nmi <= 1.0 + 1e-12


@given(labelings)
@settings(max_examples=80, deadline=None)
def test_refining_truth_keeps_precision_one(pair):
    """A clustering strictly finer than the truth has precision 1."""
    truth = np.asarray(pair[0])
    refined = truth * 50 + np.arange(truth.shape[0]) % 2
    p, _r = pairwise_precision_recall(truth, refined)
    assert p == 1.0


@given(labelings)
@settings(max_examples=80, deadline=None)
def test_coarsening_truth_keeps_recall_one(pair):
    """A clustering strictly coarser than the truth has recall 1."""
    truth = np.asarray(pair[0])
    coarse = truth // 2
    _p, r = pairwise_precision_recall(truth, coarse)
    assert r == 1.0
