"""Property-based tests for link prediction, AUC, logreg, perturbations."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.graph.core import Graph
from repro.graph.perturb import add_noise_edges, drop_edges, rewire_edges
from repro.ml.logreg import LogisticRegression
from repro.tasks.link_prediction import auc_score, edge_features

finite = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# AUC properties
# ---------------------------------------------------------------------------
@st.composite
def scored_labels(draw):
    n = draw(st.integers(4, 60))
    labels = draw(
        st.lists(st.booleans(), min_size=n, max_size=n).filter(
            lambda xs: any(xs) and not all(xs)
        )
    )
    scores = draw(st.lists(finite, min_size=n, max_size=n))
    return np.asarray(labels), np.asarray(scores)


@given(scored_labels())
@settings(max_examples=80, deadline=None)
def test_auc_bounded(data):
    labels, scores = data
    assert 0.0 <= auc_score(labels, scores) <= 1.0


@given(scored_labels())
@settings(max_examples=80, deadline=None)
def test_auc_complement(data):
    """AUC(labels, s) + AUC(labels, -s) == 1 (ties contribute ½ to both)."""
    labels, scores = data
    assert np.isclose(
        auc_score(labels, scores) + auc_score(labels, -scores), 1.0
    )


@st.composite
def integer_scored_labels(draw):
    """Integer-valued scores: affine transforms stay exactly monotone
    (tiny floats can underflow into ties, which is float arithmetic, not
    an AUC property)."""
    n = draw(st.integers(4, 60))
    labels = draw(
        st.lists(st.booleans(), min_size=n, max_size=n).filter(
            lambda xs: any(xs) and not all(xs)
        )
    )
    scores = draw(st.lists(st.integers(-100, 100), min_size=n, max_size=n))
    return np.asarray(labels), np.asarray(scores, dtype=np.float64)


@given(integer_scored_labels())
@settings(max_examples=80, deadline=None)
def test_auc_monotone_transform_invariant(data):
    labels, scores = data
    transformed = 3.0 * scores + 7.0
    assert np.isclose(
        auc_score(labels, scores), auc_score(labels, transformed)
    )


@given(scored_labels())
@settings(max_examples=80, deadline=None)
def test_auc_label_flip(data):
    """Swapping the positive class reverses the ranking direction."""
    labels, scores = data
    assert np.isclose(
        auc_score(labels, scores), 1.0 - auc_score(~labels, scores)
    )


# ---------------------------------------------------------------------------
# Edge-feature properties
# ---------------------------------------------------------------------------
@st.composite
def vectors_and_pairs(draw):
    n = draw(st.integers(2, 12))
    d = draw(st.integers(1, 6))
    vecs = draw(arrays(np.float64, (n, d), elements=finite))
    m = draw(st.integers(1, 10))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    return vecs, np.asarray(pairs)


@given(vectors_and_pairs())
@settings(max_examples=60, deadline=None)
def test_symmetric_operators(data):
    vecs, pairs = data
    swapped = pairs[:, ::-1]
    for op in ("hadamard", "average", "l1", "l2"):
        a = edge_features(vecs, pairs, operator=op)
        b = edge_features(vecs, swapped, operator=op)
        np.testing.assert_allclose(a, b, atol=1e-12)


@given(vectors_and_pairs())
@settings(max_examples=60, deadline=None)
def test_l1_l2_nonnegative_and_zero_on_diagonal(data):
    vecs, pairs = data
    self_pairs = np.column_stack([pairs[:, 0], pairs[:, 0]])
    for op in ("l1", "l2"):
        assert np.all(edge_features(vecs, pairs, operator=op) >= 0)
        np.testing.assert_allclose(
            edge_features(vecs, self_pairs, operator=op), 0.0, atol=1e-12
        )


# ---------------------------------------------------------------------------
# Logistic regression properties
# ---------------------------------------------------------------------------
@st.composite
def classification_data(draw):
    n = draw(st.integers(6, 40))
    d = draw(st.integers(1, 4))
    x = draw(arrays(np.float64, (n, d), elements=finite))
    y = draw(
        st.lists(st.integers(0, 2), min_size=n, max_size=n).filter(
            lambda ys: len(set(ys)) >= 2
        )
    )
    return x, np.asarray(y)


@given(classification_data())
@settings(max_examples=40, deadline=None)
def test_logreg_probabilities_valid(data):
    x, y = data
    clf = LogisticRegression(max_iter=50).fit(x, y)
    probs = clf.predict_proba(x)
    assert np.all(probs >= 0)
    assert np.all(probs <= 1)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


@given(classification_data())
@settings(max_examples=40, deadline=None)
def test_logreg_predictions_in_class_set(data):
    x, y = data
    clf = LogisticRegression(max_iter=50).fit(x, y)
    assert set(np.unique(clf.predict(x))) <= set(np.unique(y))


# ---------------------------------------------------------------------------
# Perturbation properties
# ---------------------------------------------------------------------------
@st.composite
def simple_graphs(draw):
    n = draw(st.integers(3, 12))
    pairs = set()
    m = draw(st.integers(2, 20))
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            pairs.add((min(u, v), max(u, v)))
    assume(len(pairs) >= 2)
    return Graph(n, sorted(pairs))


@given(simple_graphs(), st.floats(0.0, 1.0), st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_drop_edges_count(g, fraction, seed):
    out = drop_edges(g, fraction, seed=seed)
    assert out.num_edges == g.num_edges - round(fraction * g.num_edges)
    assert out.n == g.n


@given(simple_graphs(), st.floats(0.0, 2.0), st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_add_noise_count(g, fraction, seed):
    out = add_noise_edges(g, fraction, seed=seed)
    assert out.num_edges == g.num_edges + round(fraction * g.num_edges)


@given(simple_graphs(), st.floats(0.0, 1.0), st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_rewire_preserves_count_no_loops(g, fraction, seed):
    out = rewire_edges(g, fraction, seed=seed)
    assert out.num_edges == g.num_edges
    e = out.edge_list
    assert np.all(e.src != e.dst)
