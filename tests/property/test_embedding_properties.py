"""Property-based tests for embedding components (Huffman, sampler, math)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._math import scatter_add_rows, sigmoid
from repro.core.huffman import build_huffman
from repro.core.negative import NegativeSampler

count_arrays = st.lists(st.integers(0, 50), min_size=1, max_size=20).filter(
    lambda xs: sum(xs) > 0
)


@given(count_arrays)
@settings(max_examples=80, deadline=None)
def test_huffman_codes_prefix_free(counts):
    coding = build_huffman(np.asarray(counts))
    codes = []
    for v, c in enumerate(counts):
        if c > 0:
            d = int(coding.depths[v])
            codes.append(tuple(coding.codes[v, :d].tolist()))
    # No code is a prefix of another (and all are unique).
    for i, a in enumerate(codes):
        for j, b in enumerate(codes):
            if i != j and len(a) <= len(b):
                assert b[: len(a)] != a


@given(count_arrays)
@settings(max_examples=80, deadline=None)
def test_huffman_kraft(counts):
    coding = build_huffman(np.asarray(counts))
    positive = [v for v, c in enumerate(counts) if c > 0]
    if len(positive) < 2:
        return
    kraft = sum(2.0 ** -int(coding.depths[v]) for v in positive)
    assert np.isclose(kraft, 1.0)


@given(count_arrays)
@settings(max_examples=80, deadline=None)
def test_huffman_is_optimal_vs_balanced(counts):
    """Huffman expected code length never exceeds the balanced-tree bound
    ceil(log2(k)) on the occurring symbols."""
    arr = np.asarray(counts)
    coding = build_huffman(arr)
    occurring = arr > 0
    k = int(occurring.sum())
    if k < 2:
        return
    total = arr[occurring].sum()
    expected_len = float((arr[occurring] * coding.depths[occurring]).sum()) / total
    assert expected_len <= np.ceil(np.log2(k)) + 1e-9


@given(
    st.lists(st.floats(0.0, 10.0), min_size=1, max_size=15).filter(
        lambda xs: sum(xs) > 0
    ),
    st.integers(0, 999),
)
@settings(max_examples=60, deadline=None)
def test_negative_sampler_support(weights, seed):
    dist = np.asarray(weights)
    sampler = NegativeSampler(dist)
    rng = np.random.default_rng(seed)
    draws = sampler.sample(200, rng)
    assert np.all(draws >= 0)
    assert np.all(draws < len(weights))
    # Zero-mass ids never drawn.
    zero = np.flatnonzero(dist == 0)
    assert not np.any(np.isin(draws, zero))


@given(
    st.integers(1, 20),
    st.integers(1, 50),
    st.integers(1, 4),
    st.integers(0, 999),
)
@settings(max_examples=60, deadline=None)
def test_scatter_add_matches_add_at(rows_n, n_idx, dim, seed):
    rng = np.random.default_rng(seed)
    target = rng.normal(size=(rows_n, dim))
    expect = target.copy()
    idx = rng.integers(0, rows_n, n_idx)
    rows = rng.normal(size=(n_idx, dim))
    np.add.at(expect, idx, rows)
    scatter_add_rows(target, idx, rows)
    np.testing.assert_allclose(target, expect, atol=1e-10)


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_sigmoid_bounded(xs):
    out = sigmoid(np.asarray(xs))
    assert np.all(out >= 0.0)
    assert np.all(out <= 1.0)
    assert np.all(np.isfinite(out))
