"""Property-based tests for k-means and PCA."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def datasets(draw, min_rows=4, max_rows=20, min_cols=1, max_cols=5):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    return draw(arrays(np.float64, (rows, cols), elements=finite))


@given(datasets(), st.integers(1, 3), st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_kmeans_output_invariants(x, k, seed):
    result = KMeans(k, n_init=2, seed=seed).fit(x)
    assert result.labels.shape == (x.shape[0],)
    assert result.labels.min() >= 0
    assert result.labels.max() < k
    assert result.centers.shape == (k, x.shape[1])
    assert result.inertia >= 0
    assert np.all(np.isfinite(result.centers))


@given(datasets(), st.integers(1, 3), st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_kmeans_labels_are_nearest_centers(x, k, seed):
    result = KMeans(k, n_init=1, seed=seed).fit(x)
    d2 = ((x[:, None, :] - result.centers[None, :, :]) ** 2).sum(axis=2)
    own = d2[np.arange(x.shape[0]), result.labels]
    assert np.all(own <= d2.min(axis=1) + 1e-9)


@given(datasets(), st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_kmeans_inertia_decreases_in_k(x, seed):
    if x.shape[0] < 3:
        return
    i1 = KMeans(1, n_init=1, seed=seed).fit(x).inertia
    i2 = KMeans(2, n_init=3, seed=seed).fit(x).inertia
    assert i2 <= i1 + 1e-9


@given(datasets(min_rows=5, min_cols=2))
@settings(max_examples=40, deadline=None)
def test_pca_projection_shape_and_finite(x):
    k = min(2, min(x.shape) - 1)
    if k < 1:
        return
    z = PCA(k).fit_transform(x)
    assert z.shape == (x.shape[0], k)
    assert np.all(np.isfinite(z))


@given(datasets(min_rows=5, min_cols=2))
@settings(max_examples=40, deadline=None)
def test_pca_variance_nonincreasing(x):
    k = min(x.shape[0], x.shape[1])
    pca = PCA(k).fit(x)
    assert np.all(np.diff(pca.explained_variance_) <= 1e-9)


@given(datasets(min_rows=5, min_cols=2))
@settings(max_examples=40, deadline=None)
def test_pca_projection_norm_bounded(x):
    """Projection never increases a centered sample's norm (components
    are orthonormal rows)."""
    k = min(2, min(x.shape) - 1)
    if k < 1:
        return
    pca = PCA(k).fit(x)
    centered = x - pca.mean_
    z = pca.transform(x)
    assert np.all(
        np.linalg.norm(z, axis=1) <= np.linalg.norm(centered, axis=1) + 1e-6
    )
