"""Property tests: read_edge_list(errors="skip") survives fuzzed input.

The robustness contract is that *no* text file makes a skip-mode load
raise — every malformed line is dropped, every well-formed line is kept,
and the result is always a structurally valid Graph.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.io import read_edge_list

MAX_ID = 50

valid_edge_lines = st.tuples(
    st.integers(0, MAX_ID),
    st.integers(0, MAX_ID),
    st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False),
).map(lambda t: f"{t[0]} {t[1]} {t[2]:.3f}")

# Garbage drawn from an alphabet that cannot spell a huge-but-valid
# numeric edge (no digits), plus a few targeted near-miss shapes.
garbage_lines = st.one_of(
    st.text(
        alphabet="abcxyz#!?.,;- \t",
        min_size=0,
        max_size=20,
    ),
    st.sampled_from(
        [
            "1 2 3 4 5 6",  # too many columns
            "7",  # too few columns
            "-1 3 1.0",  # negative id
            "2.5 3 1.0",  # fractional id
            "nan 3 1.0",  # non-finite id
            "inf 0 1.0",
            "# n=banana",  # corrupt header
            "1 2 weight",  # non-numeric weight
        ]
    ),
)

fuzzed_files = st.lists(
    st.one_of(valid_edge_lines, garbage_lines), min_size=0, max_size=40
)


@given(fuzzed_files)
@settings(max_examples=80, deadline=None)
def test_skip_mode_always_returns_valid_graph(tmp_path_factory, lines):
    path = tmp_path_factory.mktemp("fuzz") / "edges.txt"
    path.write_text("\n".join(lines) + "\n")

    g = read_edge_list(path, errors="skip")

    # Structural validity: CSR bounds hold and ids are in range.
    assert g.n >= 0
    if g.num_edges:
        e = g.edge_list
        assert e.src.min() >= 0 and e.dst.min() >= 0
        assert max(e.src.max(), e.dst.max()) < g.n
        assert g.n <= MAX_ID + 1
    # Adjacency structure is internally consistent.
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.indices.shape[0]
    assert np.all(np.diff(g.indptr) >= 0)


@given(fuzzed_files)
@settings(max_examples=40, deadline=None)
def test_collect_mode_partitions_every_line(tmp_path_factory, lines):
    # Every non-blank, non-header line is either kept as an edge or
    # reported — nothing disappears silently.
    path = tmp_path_factory.mktemp("fuzz") / "edges.txt"
    path.write_text("\n".join(lines) + "\n")

    bad: list[tuple[int, str, str]] = []
    g = read_edge_list(path, errors="collect", collector=bad)

    data_lines = sum(
        1
        for raw in lines
        if raw.strip() and not raw.strip().startswith("#")
    )
    bad_data = sum(1 for _, line, _ in bad if not line.startswith("#"))
    assert g.num_edges + bad_data == data_lines
