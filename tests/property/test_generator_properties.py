"""Property-based tests for the synthetic-graph generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import planted_partition, stochastic_block_model
from repro.graph.lfr import lfr_benchmark


@given(
    st.integers(2, 5),          # groups
    st.integers(5, 20),         # group size
    st.floats(0.0, 1.0),        # alpha
    st.integers(0, 10),         # inter edges
    st.integers(0, 99),         # seed
)
@settings(max_examples=40, deadline=None)
def test_planted_partition_invariants(groups, size, alpha, inter, seed):
    n = groups * size
    g = planted_partition(
        n=n, groups=groups, alpha=alpha, inter_edges=inter, seed=seed
    )
    truth = g.vertex_labels("community")
    assert np.bincount(truth).tolist() == [size] * groups
    e = g.edge_list
    # No self loops, no duplicate edges.
    assert np.all(e.src != e.dst)
    pairs = set()
    for u, v in zip(e.src, e.dst):
        key = (int(min(u, v)), int(max(u, v)))
        assert key not in pairs
        pairs.add(key)
    # Cross-community edge count is exactly `inter`.
    cross = int((truth[e.src] != truth[e.dst]).sum())
    assert cross == inter
    # Intra count matches the alpha formula.
    per_group = min(
        int(round(alpha * size * (size - 1) / 2)), size * (size - 1) // 2
    )
    assert g.num_edges - inter == per_group * groups


@given(st.integers(100, 250), st.floats(0.0, 0.8), st.integers(0, 99))
@settings(max_examples=20, deadline=None)
def test_lfr_invariants(n, mu, seed):
    g = lfr_benchmark(
        n, mu=mu, min_community=20, max_community=60, seed=seed
    )
    truth = g.vertex_labels("community")
    assert truth.shape == (n,)
    e = g.edge_list
    assert np.all(e.src != e.dst)
    # Every community respects the size floor (except possible fold-in).
    sizes = np.bincount(truth)
    assert sizes.min() >= 1
    # Intra-degree never exceeds community size - 1 by construction:
    # verify no vertex has more intra-neighbors than its community allows.
    for v in range(0, n, max(n // 10, 1)):
        nbrs = g.neighbors(v)
        intra = int((truth[nbrs] == truth[v]).sum())
        assert intra <= sizes[truth[v]] - 1


@given(
    st.lists(st.integers(3, 10), min_size=2, max_size=4),
    st.floats(0.0, 1.0),
    st.floats(0.0, 0.3),
    st.integers(0, 99),
)
@settings(max_examples=30, deadline=None)
def test_sbm_invariants(sizes, p_in, p_out, seed):
    k = len(sizes)
    p = np.full((k, k), p_out)
    np.fill_diagonal(p, p_in)
    g = stochastic_block_model(sizes, p, seed=seed)
    assert g.n == sum(sizes)
    truth = g.vertex_labels("community")
    assert np.bincount(truth, minlength=k).tolist() == sizes
    e = g.edge_list
    assert np.all(e.src != e.dst)
