"""Property-based tests for Procrustes alignment and the kNN graph."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.neighbors import knn_graph
from repro.ml.procrustes import aligned_distance, procrustes_align

finite = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


@st.composite
def embeddings(draw, min_rows=4, max_rows=15, min_cols=2, max_cols=5):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    return draw(arrays(np.float64, (rows, cols), elements=finite))


@given(embeddings())
@settings(max_examples=50, deadline=None)
def test_procrustes_rotation_orthogonal(x):
    target = np.roll(x, 1, axis=0)
    result = procrustes_align(x, target)
    gram = result.rotation @ result.rotation.T
    np.testing.assert_allclose(gram, np.eye(x.shape[1]), atol=1e-8)


@given(embeddings())
@settings(max_examples=50, deadline=None)
def test_procrustes_residual_optimal_vs_identity(x):
    """The aligned residual never exceeds the unaligned one."""
    target = x[::-1].copy()
    result = procrustes_align(x, target)
    assert result.residual <= np.linalg.norm(x - target) + 1e-8


@given(embeddings(), st.integers(0, 9))
@settings(max_examples=50, deadline=None)
def test_aligned_distance_self_zero(x, _seed):
    assert aligned_distance(x, x) < 1e-8


@given(embeddings(min_rows=5), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_knn_graph_invariants(x, k):
    g = knn_graph(x, k=k, metric="euclidean")
    assert g.n == x.shape[0]
    # Union kNN graph: every vertex keeps at least its own k picks.
    assert g.out_degrees().min() >= k
    e = g.edge_list
    assert np.all(e.src != e.dst)
    # Canonical, deduplicated pairs.
    pairs = set()
    for u, v in zip(e.src, e.dst):
        key = (int(min(u, v)), int(max(u, v)))
        assert key not in pairs
        pairs.add(key)


@given(embeddings(min_rows=5), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_knn_mutual_subset(x, k):
    union = knn_graph(x, k=k, metric="euclidean", mutual=False)
    mutual = knn_graph(x, k=k, metric="euclidean", mutual=True)
    assert mutual.num_edges <= union.num_edges
