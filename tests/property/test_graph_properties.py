"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.core import EdgeList, Graph
from repro.graph.metrics import density, modularity
from repro.graph.traversal import bfs_distances, connected_components


@st.composite
def edge_lists(draw, max_n=12, max_m=30):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return n, list(zip(src, dst))


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_invariants(params):
    n, edges = params
    g = Graph(n, edges)
    # indptr is monotone, bounded, covers indices exactly.
    assert g.indptr.shape == (n + 1,)
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.indices.shape[0]
    assert np.all(np.diff(g.indptr) >= 0)
    if g.indices.size:
        assert g.indices.min() >= 0
        assert g.indices.max() < n


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_undirected_symmetry(params):
    n, edges = params
    g = Graph(n, edges)
    a = g.adjacency_matrix()
    np.testing.assert_array_equal(a, a.T)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_degree_sum_equals_arcs(params):
    n, edges = params
    g = Graph(n, edges)
    assert int(g.out_degrees().sum()) == g.num_arcs


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_subgraph_of_everything_is_identity(params):
    n, edges = params
    g = Graph(n, edges)
    sub, mapping = g.subgraph(np.arange(n))
    assert sub.num_edges == g.num_edges
    np.testing.assert_array_equal(mapping, np.arange(n))


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_bfs_distance_triangle_inequality(params):
    """d(s, v) <= d(s, u) + 1 for every arc (u, v) — BFS level property."""
    n, edges = params
    g = Graph(n, edges)
    dist = bfs_distances(g, 0)
    for u, v in g.arcs():
        if dist[u] >= 0:
            assert dist[v] != -1
            assert dist[v] <= dist[u] + 1


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_components_consistent_with_reachability(params):
    n, edges = params
    g = Graph(n, edges)
    comp = connected_components(g)
    dist = bfs_distances(g, 0)
    reached = dist >= 0
    assert np.all(comp[reached] == comp[0])
    assert not np.any(comp[~reached] == comp[0])


@given(edge_lists(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_modularity_bounded(params, k):
    n, edges = params
    g = Graph(n, edges)
    rng = np.random.default_rng(0)
    membership = rng.integers(0, k, n)
    q = modularity(g, membership)
    assert -1.0 <= q <= 1.0


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_density_bounded(params):
    n, edges = params
    # Deduplicate edges and drop self-loops for a simple graph.
    simple = {(min(u, v), max(u, v)) for u, v in edges if u != v}
    g = Graph(n, sorted(simple))
    assert 0.0 <= density(g) <= 1.0


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_reverse_twice_is_identity(params):
    n, edges = params
    g = Graph(n, edges, directed=True)
    rr = g.reverse().reverse()
    np.testing.assert_array_equal(
        np.sort(rr.edge_list.src), np.sort(g.edge_list.src)
    )
    assert rr.num_arcs == g.num_arcs
