"""Property-based tests for the walk engine and corpus."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.core import Graph
from repro.walks.corpus import PAD, WalkCorpus
from repro.walks.engine import RandomWalkConfig, WalkMode, generate_walks


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    m = draw(st.integers(min_value=1, max_value=20))
    edges = []
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        edges.append((u, v))
    directed = draw(st.booleans())
    return Graph(n, edges, directed=directed)


@given(small_graphs(), st.integers(1, 3), st.integers(1, 8), st.integers(0, 99))
@settings(max_examples=50, deadline=None)
def test_walks_are_valid_paths(g, t, length, seed):
    cfg = RandomWalkConfig(walks_per_vertex=t, walk_length=length, seed=seed)
    corpus = generate_walks(g, cfg)
    arcs = set(g.arcs())
    assert corpus.num_walks == t * g.n
    for walk in corpus.sentences():
        assert walk.shape[0] >= 1
        for u, v in zip(walk[:-1], walk[1:]):
            assert (int(u), int(v)) in arcs


@given(small_graphs(), st.integers(1, 3), st.integers(2, 8), st.integers(0, 99))
@settings(max_examples=50, deadline=None)
def test_termination_only_at_dead_ends(g, t, length, seed):
    cfg = RandomWalkConfig(walks_per_vertex=t, walk_length=length, seed=seed)
    corpus = generate_walks(g, cfg)
    deg = g.out_degrees()
    for walk, ln in zip(corpus.walks, corpus.lengths):
        if ln < length:
            last = walk[ln - 1]
            assert deg[last] == 0


@given(small_graphs(), st.integers(0, 99))
@settings(max_examples=30, deadline=None)
def test_walk_determinism(g, seed):
    cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=6, seed=seed)
    a = generate_walks(g, cfg)
    b = generate_walks(g, cfg)
    np.testing.assert_array_equal(a.walks, b.walks)


@st.composite
def corpora(draw):
    walks = draw(st.integers(1, 6))
    length = draw(st.integers(1, 8))
    num_vertices = draw(st.integers(1, 10))
    rows = np.full((walks, length), PAD, dtype=np.int64)
    for i in range(walks):
        ln = draw(st.integers(1, length))
        for j in range(ln):
            rows[i, j] = draw(st.integers(0, num_vertices - 1))
    return WalkCorpus(rows, num_vertices=num_vertices)


@given(corpora(), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_context_examples_invariants(corpus, window):
    centers, contexts = corpus.context_arrays(window)
    assert contexts.shape == (centers.shape[0], 2 * window)
    # Every example's center occurs in the corpus and has >= 1 context.
    counts = corpus.token_counts()
    for c, ctx in zip(centers, contexts):
        assert counts[c] > 0
        real = ctx[ctx != PAD]
        assert real.shape[0] >= 1
        assert np.all(counts[real] > 0)


@given(corpora())
@settings(max_examples=50, deadline=None)
def test_token_counts_match_lengths(corpus):
    assert corpus.token_counts().sum() == corpus.lengths.sum()


@given(corpora(), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_context_count_bounded_by_window(corpus, window):
    """Each center can have at most 2*window real contexts, and at most
    walk_length - 1 of them."""
    centers, contexts = corpus.context_arrays(window)
    real_counts = (contexts != PAD).sum(axis=1)
    assert np.all(real_counts <= 2 * window)
    assert np.all(real_counts <= corpus.max_length - 1) if corpus.max_length > 1 else True


@given(corpora())
@settings(max_examples=30, deadline=None)
def test_merge_token_conservation(corpus):
    merged = corpus.merge(corpus)
    np.testing.assert_array_equal(
        merged.token_counts(), 2 * corpus.token_counts()
    )
