"""Tests for the Louvain extension."""

import numpy as np
import pytest

from repro.community.louvain import louvain_communities
from repro.graph.core import Graph
from repro.graph.generators import planted_partition
from repro.graph.metrics import modularity
from repro.ml.metrics import adjusted_rand_index


class TestLouvain:
    def test_two_cliques(self, two_cliques):
        labels = louvain_communities(two_cliques, seed=0)
        truth = two_cliques.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_planted_partition(self, small_benchmark):
        labels = louvain_communities(small_benchmark, seed=0)
        truth = small_benchmark.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_modularity_reasonable(self, small_benchmark):
        labels = louvain_communities(small_benchmark, seed=0)
        assert modularity(small_benchmark, labels) > 0.3

    def test_empty(self):
        assert louvain_communities(Graph(0)).shape == (0,)

    def test_edgeless(self):
        labels = louvain_communities(Graph(4), seed=0)
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_directed_rejected(self, directed_chain):
        with pytest.raises(ValueError):
            louvain_communities(directed_chain)

    def test_deterministic_given_seed(self, small_benchmark):
        a = louvain_communities(small_benchmark, seed=3)
        b = louvain_communities(small_benchmark, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_matches_networkx_quality(self, small_benchmark):
        nx = pytest.importorskip("networkx")
        if not hasattr(nx.algorithms.community, "louvain_communities"):
            pytest.skip("networkx without louvain")
        from repro.graph.metrics import modularity

        e = small_benchmark.edge_list
        ref = nx.Graph(list(zip(e.src.tolist(), e.dst.tolist())))
        ref.add_nodes_from(range(small_benchmark.n))
        nx_comms = nx.algorithms.community.louvain_communities(ref, seed=0)
        nx_labels = np.zeros(small_benchmark.n, dtype=np.int64)
        for i, comm in enumerate(nx_comms):
            for v in comm:
                nx_labels[v] = i
        ours = modularity(
            small_benchmark, louvain_communities(small_benchmark, seed=0)
        )
        theirs = modularity(small_benchmark, nx_labels)
        assert ours >= theirs - 0.03

    def test_weighted(self):
        g = Graph(
            4, [(0, 1, 50.0), (2, 3, 50.0), (1, 2, 0.01)]
        )
        labels = louvain_communities(g, seed=0)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
