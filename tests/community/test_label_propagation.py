"""Tests for label propagation."""

import numpy as np
import pytest

from repro.community.label_propagation import label_propagation_communities
from repro.graph.core import Graph
from repro.ml.metrics import adjusted_rand_index


class TestLabelPropagation:
    def test_two_cliques(self, two_cliques):
        labels = label_propagation_communities(two_cliques, seed=0)
        truth = two_cliques.vertex_labels("community")
        # LP is stochastic; it should at least keep cliques pure most runs.
        assert adjusted_rand_index(truth, labels) > 0.5

    def test_converges_and_terminates(self, small_benchmark):
        labels = label_propagation_communities(small_benchmark, seed=1)
        assert labels.shape == (small_benchmark.n,)

    def test_isolated_vertices_keep_own_label(self):
        g = Graph(3, [(0, 1)])
        labels = label_propagation_communities(g, seed=0)
        assert labels[2] not in (labels[0],)

    def test_empty(self):
        assert label_propagation_communities(Graph(0)).shape == (0,)

    def test_directed_rejected(self, directed_chain):
        with pytest.raises(ValueError):
            label_propagation_communities(directed_chain)

    def test_deterministic_given_seed(self, two_cliques):
        a = label_propagation_communities(two_cliques, seed=5)
        b = label_propagation_communities(two_cliques, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_weighted_votes(self):
        # Vertex 1 is tied between 0 and 2 by count; weight breaks the tie.
        g = Graph(3, [(0, 1, 10.0), (1, 2, 0.1)])
        labels = label_propagation_communities(g, seed=0)
        assert labels[0] == labels[1]
