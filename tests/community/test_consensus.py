"""Tests for consensus community detection."""

import numpy as np
import pytest

from repro.community.consensus import consensus_communities
from repro.core.model import V2VConfig
from repro.graph.generators import planted_partition
from repro.ml.metrics import adjusted_rand_index


FAST = V2VConfig(
    dim=12, walks_per_vertex=8, walk_length=25, epochs=8, early_stop=False
)


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=90, groups=3, alpha=0.6, inter_edges=12, seed=0)


class TestConsensus:
    def test_recovers_communities(self, graph):
        result = consensus_communities(
            graph, 3, runs=3, config=FAST, n_init=10, seed=0
        )
        truth = graph.vertex_labels("community")
        assert adjusted_rand_index(truth, result.membership) > 0.9

    def test_result_fields(self, graph):
        result = consensus_communities(
            graph, 3, runs=3, config=FAST, n_init=5, seed=0
        )
        assert result.num_runs == 3
        assert result.coassignment.shape == (90, 90)
        assert 0.0 <= result.coassignment.min()
        assert result.coassignment.max() <= 1.0
        np.testing.assert_allclose(np.diag(result.coassignment), 1.0)
        np.testing.assert_allclose(
            result.coassignment, result.coassignment.T
        )
        assert 0.5 <= result.mean_pair_confidence <= 1.0

    def test_confidence_high_on_strong_structure(self, graph):
        result = consensus_communities(
            graph, 3, runs=3, config=FAST, n_init=10, seed=0
        )
        assert result.mean_pair_confidence > 0.9

    def test_single_run_degenerates_to_detector(self, graph):
        result = consensus_communities(
            graph, 3, runs=1, config=FAST, n_init=10, seed=0
        )
        # With one run, co-assignment is binary and consensus = that run
        # (up to label permutation).
        assert adjusted_rand_index(
            result.run_memberships[0], result.membership
        ) == pytest.approx(1.0)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            consensus_communities(graph, 0)
        with pytest.raises(ValueError):
            consensus_communities(graph, 3, runs=0)

    def test_deterministic(self, graph):
        a = consensus_communities(graph, 3, runs=2, config=FAST, n_init=5, seed=4)
        b = consensus_communities(graph, 3, runs=2, config=FAST, n_init=5, seed=4)
        np.testing.assert_array_equal(a.membership, b.membership)
