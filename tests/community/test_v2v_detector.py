"""Tests for the V2V community-detection pipeline."""

import numpy as np
import pytest

from repro.community.v2v_detector import V2VCommunityDetector
from repro.core.model import V2V, V2VConfig
from repro.graph.generators import planted_partition
from repro.ml.metrics import pairwise_precision_recall


@pytest.fixture(scope="module")
def benchmark_graph():
    return planted_partition(n=150, groups=5, alpha=0.5, inter_edges=25, seed=0)


FAST = dict(walks_per_vertex=6, walk_length=25, epochs=5, early_stop=False)


class TestDetector:
    def test_detects_planted_communities(self, benchmark_graph):
        det = V2VCommunityDetector(
            5, config=V2VConfig(dim=16, seed=0, **FAST), n_init=20
        )
        result = det.detect(benchmark_graph)
        truth = benchmark_graph.vertex_labels("community")
        p, r = pairwise_precision_recall(truth, result.membership)
        assert p > 0.8 and r > 0.8

    def test_result_fields(self, benchmark_graph):
        det = V2VCommunityDetector(
            5, config=V2VConfig(dim=8, seed=0, **FAST), n_init=5
        )
        result = det.detect(benchmark_graph)
        assert result.num_communities == 5
        assert result.train_seconds > 0
        assert result.cluster_seconds > 0
        assert result.inertia >= 0
        assert result.membership.shape == (150,)

    def test_clustering_much_faster_than_training(self, benchmark_graph):
        """The paper's Table I headline: clustering is a tiny fraction of
        the one-time training cost."""
        det = V2VCommunityDetector(
            5, config=V2VConfig(dim=8, seed=0, **FAST), n_init=10
        )
        result = det.detect(benchmark_graph)
        assert result.cluster_seconds < result.train_seconds

    def test_detect_with_model_reuses_embedding(self, benchmark_graph):
        model = V2V(V2VConfig(dim=8, seed=0, **FAST)).fit(benchmark_graph)
        det = V2VCommunityDetector(5, config=V2VConfig(dim=8, seed=0), n_init=5)
        result = det.detect_with_model(model)
        assert result.model is model
        assert result.membership.shape == (150,)

    def test_k_validated(self):
        with pytest.raises(ValueError):
            V2VCommunityDetector(0)

    def test_seed_override(self, benchmark_graph):
        a = V2VCommunityDetector(
            5, config=V2VConfig(dim=8, **FAST), seed=1, n_init=3
        ).detect(benchmark_graph)
        b = V2VCommunityDetector(
            5, config=V2VConfig(dim=8, **FAST), seed=1, n_init=3
        ).detect(benchmark_graph)
        np.testing.assert_array_equal(a.membership, b.membership)
