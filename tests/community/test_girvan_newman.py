"""Tests for Girvan–Newman."""

import numpy as np
import pytest

from repro.community.girvan_newman import girvan_newman_communities
from repro.graph.core import Graph
from repro.graph.generators import planted_partition
from repro.ml.metrics import adjusted_rand_index


class TestGirvanNewman:
    def test_two_cliques_split_on_bridge(self, two_cliques):
        labels = girvan_newman_communities(two_cliques, target_communities=2)
        truth = two_cliques.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_modularity_peak_mode(self, two_cliques):
        labels = girvan_newman_communities(two_cliques)
        truth = two_cliques.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_planted_partition(self):
        g = planted_partition(n=60, groups=3, alpha=0.8, inter_edges=6, seed=0)
        labels = girvan_newman_communities(g, target_communities=3)
        truth = g.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_max_removals_respected(self, two_cliques):
        # Zero removals allowed: initial single component returned.
        labels = girvan_newman_communities(two_cliques, max_removals=0)
        assert labels.max() == 0

    def test_sampled_sources(self, two_cliques):
        labels = girvan_newman_communities(
            two_cliques, target_communities=2, sample_sources=4, seed=0
        )
        truth = two_cliques.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_directed_rejected(self, directed_chain):
        with pytest.raises(ValueError):
            girvan_newman_communities(directed_chain)

    def test_empty_graph(self):
        assert girvan_newman_communities(Graph(0)).shape == (0,)

    def test_edgeless_graph(self):
        labels = girvan_newman_communities(Graph(3))
        assert sorted(labels.tolist()) == [0, 1, 2]

    def test_target_larger_than_possible(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        # Requesting 3 communities forces removing edges until it splits.
        labels = girvan_newman_communities(g, target_communities=3)
        assert labels.max() + 1 == 3

    def test_deterministic_without_sampling(self, two_cliques):
        a = girvan_newman_communities(two_cliques, target_communities=2)
        b = girvan_newman_communities(two_cliques, target_communities=2)
        np.testing.assert_array_equal(a, b)
