"""Tests for CNM greedy modularity."""

import numpy as np
import pytest

from repro.community.cnm import cnm_communities
from repro.graph.core import Graph
from repro.graph.generators import complete_graph, planted_partition
from repro.graph.metrics import modularity
from repro.ml.metrics import adjusted_rand_index


class TestCNM:
    def test_two_cliques_split(self, two_cliques):
        labels = cnm_communities(two_cliques)
        truth = two_cliques.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_planted_partition_recovered(self, small_benchmark):
        labels = cnm_communities(small_benchmark)
        truth = small_benchmark.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) > 0.95

    def test_target_communities_stops_merging(self, small_benchmark):
        labels = cnm_communities(small_benchmark, target_communities=4)
        assert labels.max() + 1 == 4

    def test_modularity_positive_on_structured(self, two_cliques):
        labels = cnm_communities(two_cliques)
        assert modularity(two_cliques, labels) > 0.3

    def test_complete_graph_one_community(self):
        g = complete_graph(8)
        labels = cnm_communities(g)
        # No split improves modularity on a clique.
        assert labels.max() == 0

    def test_disconnected_components_never_merged_wrongly(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        labels = cnm_communities(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_empty_graph(self):
        assert cnm_communities(Graph(0)).shape == (0,)

    def test_edgeless_graph_singletons(self):
        labels = cnm_communities(Graph(4))
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_directed_rejected(self, directed_chain):
        with pytest.raises(ValueError):
            cnm_communities(directed_chain)

    def test_weighted_edges_respected(self):
        # Weight structure overrides unit topology: {0,1} and {2,3} are
        # heavy pairs bridged by feather-light edges.
        g = Graph(
            4,
            [(0, 1, 100.0), (2, 3, 100.0), (1, 2, 0.01), (0, 3, 0.01)],
        )
        labels = cnm_communities(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_deterministic(self, small_benchmark):
        a = cnm_communities(small_benchmark)
        b = cnm_communities(small_benchmark)
        np.testing.assert_array_equal(a, b)

    def test_matches_networkx_quality(self, small_benchmark):
        nx = pytest.importorskip("networkx")
        e = small_benchmark.edge_list
        ref = nx.Graph(list(zip(e.src.tolist(), e.dst.tolist())))
        ref.add_nodes_from(range(small_benchmark.n))
        nx_comms = nx.algorithms.community.greedy_modularity_communities(ref)
        nx_labels = np.zeros(small_benchmark.n, dtype=np.int64)
        for i, comm in enumerate(nx_comms):
            for v in comm:
                nx_labels[v] = i
        ours = modularity(small_benchmark, cnm_communities(small_benchmark))
        theirs = modularity(small_benchmark, nx_labels)
        assert ours >= theirs - 0.02
