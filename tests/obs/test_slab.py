"""Cross-process metrics slab: single-writer rows over shared memory."""

import pickle

import numpy as np
import pytest

from repro.obs.slab import HOGWILD_SLOTS, MetricsSlab, MetricsSlabSpec
from repro.parallel.pool import parallel_map
from repro.parallel.shm import SHM_AVAILABLE, SharedArray

from tests.parallel.test_shm import shm_entries

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="platform has no multiprocessing.shared_memory"
)

SLOTS = ("batches", "examples", "loss_sum")


@pytest.fixture()
def no_leaks():
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def _worker_writes_row(item):
    """Pool task: attach to the slab and fill this worker's row."""
    worker, spec = item
    slab = MetricsSlab.attach(spec)
    try:
        slab.put(worker, "batches", float(worker + 1))
        slab.add(worker, "examples", 10.0 * (worker + 1))
        slab.add(worker, "examples", 1.0)
        slab.add(worker, "loss_sum", 0.5)
    finally:
        slab.close()
    return worker


class TestParentSide:
    def test_over_zeroes_and_reads_back(self, no_leaks):
        with SharedArray.from_array(np.full((2, 3), 7.0)) as shared:
            slab = MetricsSlab.over(shared, SLOTS)
            assert slab.totals() == {"batches": 0.0, "examples": 0.0, "loss_sum": 0.0}
            slab.add(0, "batches", 2)
            slab.put(1, "batches", 5)
            assert slab.get(0, "batches") == 2.0
            assert slab.row(1) == {"batches": 5.0, "examples": 0.0, "loss_sum": 0.0}
            assert slab.totals()["batches"] == 7.0
            assert len(slab.rows()) == 2

    def test_reset_clears_every_row(self, no_leaks):
        with SharedArray.from_array(np.zeros((2, 3))) as shared:
            slab = MetricsSlab.over(shared, SLOTS)
            slab.add(0, "examples", 4)
            slab.reset()
            assert slab.totals()["examples"] == 0.0

    def test_shape_must_match_slots(self, no_leaks):
        with SharedArray.from_array(np.zeros((2, 4))) as shared:
            with pytest.raises(ValueError, match="does not match"):
                MetricsSlab.over(shared, SLOTS)

    def test_unknown_slot_is_a_key_error(self, no_leaks):
        with SharedArray.from_array(np.zeros((1, 3))) as shared:
            slab = MetricsSlab.over(shared, SLOTS)
            with pytest.raises(KeyError):
                slab.add(0, "nonexistent", 1.0)


class TestSpec:
    def test_picklable_with_workers_property(self, no_leaks):
        with SharedArray.from_array(np.zeros((3, len(HOGWILD_SLOTS)))) as shared:
            slab = MetricsSlab.over(shared, HOGWILD_SLOTS)
            spec = pickle.loads(pickle.dumps(slab.spec))
            assert isinstance(spec, MetricsSlabSpec)
            assert spec.workers == 3
            assert spec.slots == HOGWILD_SLOTS


class TestCrossProcess:
    def test_workers_fill_their_own_rows(self, no_leaks):
        with SharedArray.from_array(np.zeros((2, 3))) as shared:
            slab = MetricsSlab.over(shared, SLOTS)
            items = [(w, slab.spec) for w in range(2)]
            assert parallel_map(_worker_writes_row, items, workers=2) == [0, 1]
            assert slab.row(0) == {"batches": 1.0, "examples": 11.0, "loss_sum": 0.5}
            assert slab.row(1) == {"batches": 2.0, "examples": 21.0, "loss_sum": 0.5}
            assert slab.totals() == {
                "batches": 3.0,
                "examples": 32.0,
                "loss_sum": 1.0,
            }

    def test_attach_is_a_context_manager(self, no_leaks):
        with SharedArray.from_array(np.zeros((1, 3))) as shared:
            slab = MetricsSlab.over(shared, SLOTS)
            with MetricsSlab.attach(slab.spec) as attached:
                attached.add(0, "batches", 1.0)
            assert slab.get(0, "batches") == 1.0
