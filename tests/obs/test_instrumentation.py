"""End-to-end instrumentation: spans in the stream, manifest agreement,
and the bitwise no-op guarantee of the disabled path."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.graph.generators import planted_partition
from repro.obs.logging import parse_jsonl
from repro.obs.manifest import load_manifest
from repro.obs.recorder import ObsConfig, session
from repro.obs.report import render_report, span_summary
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.core.model import V2V, V2VConfig

WALKS_PER_VERTEX = 4
EPOCHS = 3


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=60, groups=3, alpha=0.7, inter_edges=8, seed=0)


def _config(**overrides) -> V2VConfig:
    base = dict(
        dim=8,
        walks_per_vertex=WALKS_PER_VERTEX,
        walk_length=20,
        epochs=EPOCHS,
        early_stop=False,
        seed=0,
    )
    base.update(overrides)
    return V2VConfig(**base)


class TestPipelineTelemetry:
    def test_fit_emits_spans_for_every_phase(self, graph, tmp_path):
        events_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "run.json"
        cfg = ObsConfig(
            log_level="error",
            log_json=str(events_path),
            metrics_out=str(manifest_path),
        )
        with session(cfg, run_config={"dim": 8}, stream=io.StringIO()):
            V2V(_config()).fit(graph)

        events = parse_jsonl(events_path)
        spans = span_summary(events)
        assert spans["pipeline.fit"]["count"] == 1
        assert spans["walks.generate"]["count"] == 1
        assert spans["train.run"]["count"] == 1
        assert spans["train.epoch"]["count"] == EPOCHS  # one span per epoch
        assert all(row["errors"] == 0 for row in spans.values())

        # The manifest and the event stream describe the same run.
        manifest = load_manifest(manifest_path)
        counters = manifest["metrics"]["counters"]
        assert counters["train.epochs_run"] == EPOCHS
        assert counters["walks.total"] == graph.n * WALKS_PER_VERTEX
        assert manifest["metrics"]["gauges"]["train.words_per_sec"] > 0
        hist = manifest["metrics"]["histograms"]["train.epoch_seconds"]
        assert hist["count"] == EPOCHS

        report = render_report(manifest, events_path=events_path)
        assert "run manifest" in report
        assert "train.epoch" in report

    def test_disabled_observability_is_bitwise_identical(self, graph, tmp_path):
        plain = V2V(_config()).fit(graph).vectors

        cfg = ObsConfig(
            log_level="error",
            log_json=str(tmp_path / "e.jsonl"),
            metrics_out=str(tmp_path / "run.json"),
        )
        with session(cfg, stream=io.StringIO()):
            observed = V2V(_config()).fit(graph).vectors

        # Telemetry must make zero RNG draws and zero float-op changes.
        np.testing.assert_array_equal(plain, observed)

    def test_v2vconfig_observability_opens_its_own_session(self, graph, tmp_path):
        manifest_path = tmp_path / "run.json"
        obs = ObsConfig(log_level="error", metrics_out=str(manifest_path))
        V2V(_config(observability=obs)).fit(graph)
        manifest = load_manifest(manifest_path)
        assert manifest["config"]["entrypoint"] == "V2V.fit"
        assert manifest["config"]["dim"] == 8
        assert manifest["metrics"]["counters"]["train.epochs_run"] == EPOCHS

    def test_checkpoint_telemetry(self, graph, tmp_path):
        events_path = tmp_path / "events.jsonl"
        cfg = ObsConfig(log_level="error", log_json=str(events_path))
        with session(cfg, stream=io.StringIO()) as rec:
            V2V(_config()).fit(graph, checkpoint_dir=tmp_path / "ckpt")
            counters = rec.registry.snapshot()["counters"]
        assert counters["checkpoint.saves"] >= 1
        assert counters["checkpoint.bytes"] > 0
        assert any(
            e["event"] == "checkpoint.saved" for e in parse_jsonl(events_path)
        )

    def test_retry_telemetry(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        cfg = ObsConfig(log_level="error", log_json=str(events_path))
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with session(cfg, stream=io.StringIO()) as rec:
            assert call_with_retry(flaky, policy=policy, sleep=lambda s: None) == "ok"
            counters = rec.registry.snapshot()["counters"]
        assert counters["retry.attempts"] == 2
        retries = [
            e for e in parse_jsonl(events_path) if e["event"] == "retry.attempt"
        ]
        assert [e["attempt"] for e in retries] == [1, 2]
        assert all("transient" in e["error"] for e in retries)


class TestCliTelemetry:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        rc = main(
            ["generate", "-o", str(path), "--n", "60", "--groups", "3", "--seed", "0"]
        )
        assert rc == 0
        return path

    def test_embed_writes_stream_and_manifest(self, graph_file, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "run.json"
        rc = main(
            [
                "embed", str(graph_file), "-o", str(tmp_path / "v.npz"),
                "--dim", "8", "--walks", "2", "--length", "10", "--epochs", "2",
                "--seed", "0",
                "--log-json", str(events_path),
                "--metrics-out", str(manifest_path),
            ]
        )
        assert rc == 0
        spans = span_summary(parse_jsonl(events_path))
        assert spans["walks.generate"]["count"] == 1
        assert spans["train.epoch"]["count"] == 2
        manifest = load_manifest(manifest_path)
        assert manifest["config"]["command"] == "embed"
        assert manifest["metrics"]["counters"]["train.epochs_run"] == 2
        # stdout stays reserved for the command result
        out = capsys.readouterr().out
        assert "embedded 60 vertices" in out
        assert "span." not in out

    def test_no_telemetry_writes_nothing(self, graph_file, tmp_path):
        manifest_path = tmp_path / "run.json"
        rc = main(
            [
                "embed", str(graph_file), "-o", str(tmp_path / "v.npz"),
                "--dim", "4", "--walks", "2", "--length", "8", "--epochs", "1",
                "--no-telemetry", "--metrics-out", str(manifest_path),
            ]
        )
        assert rc == 0
        assert not manifest_path.exists()

    def test_report_command(self, graph_file, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        main(
            [
                "embed", str(graph_file), "-o", str(tmp_path / "v.npz"),
                "--dim", "4", "--walks", "2", "--length", "8", "--epochs", "1",
                "--metrics-out", str(manifest_path),
            ]
        )
        capsys.readouterr()
        assert main(["report", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "train.epochs_run" in out

    def test_report_rejects_missing_or_invalid_manifest(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "other"}')
        assert main(["report", str(bad)]) == 2
