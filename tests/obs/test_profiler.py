"""Sampling profiler: stack aggregation, merging, and worker dumps."""

import json
import threading
import time

import pytest

from repro.obs.profiler import (
    DEFAULT_HZ,
    PROFILE_DIR_ENV,
    PROFILE_HZ_ENV,
    SUMMARY_STACK_CAP,
    SamplingProfiler,
    StackProfile,
    collect_worker_profiles,
    dump_worker_profile,
    maybe_profile_worker,
    worker_profile_env,
)


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class TestStackProfile:
    def test_record_and_top_aggregate_by_leaf(self):
        prof = StackProfile()
        prof.record("a.py:main;b.py:inner")
        prof.record("a.py:main;b.py:inner")
        prof.record("a.py:main;c.py:other")
        assert prof.samples == 3
        top = prof.top(2)
        assert top[0] == ("b.py:inner", 2, pytest.approx(2 / 3))
        assert top[1][0] == "c.py:other"

    def test_merge_sums_counts_and_durations(self):
        a = StackProfile(duration=1.0, stacks={"x": 2}, samples=2)
        b = StackProfile(duration=0.5, stacks={"x": 1, "y": 3}, samples=4)
        a.merge(b)
        assert a.samples == 6
        assert a.duration == pytest.approx(1.5)
        assert a.stacks == {"x": 3, "y": 3}

    def test_summary_roundtrip(self):
        prof = StackProfile(hz=50.0, duration=2.0)
        for _ in range(5):
            prof.record("m.py:f;m.py:g")
        summary = prof.summary()
        back = StackProfile.from_summary(summary)
        assert back.samples == prof.samples
        assert back.stacks == prof.stacks
        assert summary["top"][0]["frame"] == "m.py:g"
        assert json.dumps(summary)  # manifest-storable

    def test_summary_caps_distinct_stacks(self):
        prof = StackProfile()
        for i in range(SUMMARY_STACK_CAP + 50):
            prof.record(f"m.py:f{i}")
        summary = prof.summary()
        assert len(summary["stacks"]) == SUMMARY_STACK_CAP
        assert summary["stacks_dropped"] == 50
        assert summary["samples"] == SUMMARY_STACK_CAP + 50  # exact

    def test_to_collapsed_is_flamegraph_lines(self):
        prof = StackProfile(stacks={"a;b": 3, "a;c": 1})
        lines = prof.to_collapsed().splitlines()
        assert lines[0] == "a;b 3"
        assert lines[1] == "a;c 1"


class TestSamplingProfiler:
    def test_samples_busy_work_in_own_thread(self):
        with SamplingProfiler(hz=200.0) as prof:
            _busy(0.25)
        profile = prof.profile
        assert profile.samples > 5
        assert profile.duration >= 0.2
        leaves = [leaf for leaf, _, _ in profile.top(5)]
        assert any("_busy" in leaf for leaf in leaves)

    def test_all_threads_mode_sees_other_threads(self):
        done = threading.Event()

        def spin():
            while not done.is_set():
                sum(range(100))

        thread = threading.Thread(target=spin, daemon=True)
        thread.start()
        try:
            with SamplingProfiler(hz=200.0, all_threads=True) as prof:
                time.sleep(0.2)
        finally:
            done.set()
            thread.join()
        leaves = [leaf for leaf, _, _ in prof.profile.top(10)]
        assert any("spin" in leaf for leaf in leaves)

    def test_rejects_bad_hz_and_double_start(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        prof = SamplingProfiler(hz=10).start()
        with pytest.raises(RuntimeError):
            prof.start()
        prof.stop()

    def test_stop_without_start_is_safe(self):
        prof = SamplingProfiler()
        assert prof.stop() is prof.profile


class TestWorkerProfiles:
    def test_env_arming_roundtrip(self, tmp_path, monkeypatch):
        env = worker_profile_env(tmp_path, hz=150.0)
        assert env[PROFILE_DIR_ENV] == str(tmp_path)
        for key, value in env.items():
            monkeypatch.setenv(key, value)
        prof = maybe_profile_worker()
        assert prof is not None
        try:
            _busy(0.1)
            dump_worker_profile(prof)
        finally:
            prof.stop()
        merged = collect_worker_profiles(tmp_path)
        assert merged is not None
        assert merged.hz == 150.0
        assert merged.duration > 0

    def test_disarmed_when_env_missing(self, monkeypatch):
        monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
        assert maybe_profile_worker() is None

    def test_bad_hz_falls_back_to_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(PROFILE_HZ_ENV, "not-a-number")
        prof = maybe_profile_worker()
        assert prof is not None
        assert prof.hz == DEFAULT_HZ
        prof.stop()

    def test_collect_skips_unreadable_dumps(self, tmp_path):
        (tmp_path / "worker.1.json").write_text("{torn")
        (tmp_path / "worker.2.json").write_text(
            json.dumps(StackProfile(stacks={"a": 1}, samples=1).summary())
        )
        merged = collect_worker_profiles(tmp_path)
        assert merged is not None and merged.samples == 1

    def test_collect_empty_dir_is_none(self, tmp_path):
        assert collect_worker_profiles(tmp_path) is None
