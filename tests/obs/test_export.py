"""Chrome Trace Event export: mapping, caps, and structural validation."""

import io
import json

from repro.cli import main
from repro.obs.export import (
    INSTANT_EVENT_CAP,
    MAIN_TID,
    WORKER_TID0,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.logging import parse_jsonl
from repro.obs.recorder import ObsConfig, session


def _events(tmp_path):
    """A real event stream: one session with nested spans + worker events."""
    events_path = tmp_path / "events.jsonl"
    cfg = ObsConfig(log_level="error", log_json=str(events_path))
    with session(cfg, stream=io.StringIO()) as rec:
        with rec.span("pipeline.stage", stage="walks"):
            pass
        with rec.span("pipeline.stage", stage="train"):
            with rec.span("train.epoch", epoch=0):
                rec.event(
                    "hogwild.worker",
                    level="debug",
                    worker=0,
                    epoch=0,
                    batches=5,
                    examples=100,
                    loss_sum=1.5,
                )
                rec.event(
                    "hogwild.worker",
                    level="debug",
                    worker=1,
                    epoch=0,
                    batches=5,
                    examples=90,
                    loss_sum=1.2,
                )
    return parse_jsonl(events_path)


class TestChromeTrace:
    def test_spans_become_complete_events(self, tmp_path):
        trace = chrome_trace(_events(tmp_path))
        complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in complete}
        assert {"pipeline.stage", "train.epoch"} <= names
        for event in complete:
            assert event["tid"] == MAIN_TID
            assert event["dur"] >= 0
            assert event["ts"] >= 0
        stages = {
            e["args"].get("stage")
            for e in complete
            if e["name"] == "pipeline.stage"
        }
        assert stages == {"walks", "train"}

    def test_worker_events_get_their_own_tracks(self, tmp_path):
        trace = chrome_trace(_events(tmp_path))
        worker_instants = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "i" and e.get("cat") == "hogwild"
        ]
        assert {e["tid"] for e in worker_instants} == {
            WORKER_TID0,
            WORKER_TID0 + 1,
        }
        counters = [
            e for e in trace["traceEvents"] if e.get("ph") == "C"
        ]
        assert any(e["args"] == {"w0": 100} for e in counters)
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert "hogwild-worker-0" in thread_names

    def test_instant_cap_records_drops(self):
        events = [
            {"ts": float(i), "event": f"e{i}", "level": "info"}
            for i in range(INSTANT_EVENT_CAP + 10)
        ]
        trace = chrome_trace(events)
        assert trace["metadata"]["instants_dropped"] == 10

    def test_empty_stream_is_still_valid_json(self):
        trace = chrome_trace([])
        assert trace["traceEvents"] == []
        json.dumps(trace)

    def test_write_roundtrip(self, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace(out, _events(tmp_path))
        loaded = json.loads(out.read_text())
        assert validate_chrome_trace(loaded) == []


class TestValidation:
    def test_rejects_non_trace_shapes(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_flags_missing_complete_events(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "i", "ts": 0}]}
        )
        assert any("no complete" in p for p in problems)

    def test_flags_uncovered_stage(self, tmp_path):
        trace = chrome_trace(_events(tmp_path))
        problems = validate_chrome_trace(
            trace, stage_names=["walks", "train", "detect"]
        )
        assert problems == ["no complete event for pipeline stage 'detect'"]

    def test_flags_malformed_events(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0}, "junk"]}
        )
        assert any("missing dur" in p for p in problems)
        assert any("not an event object" in p for p in problems)


class TestCliTraceExport:
    def test_report_trace_export(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        graph = tmp_path / "g.edges"
        assert main(["generate", "-o", str(graph), "--n", "40", "--seed", "1"]) == 0
        assert (
            main(
                [
                    "embed",
                    str(graph),
                    "-o",
                    str(tmp_path / "v.npz"),
                    "--dim",
                    "8",
                    "--epochs",
                    "2",
                    "--walks",
                    "2",
                    "--length",
                    "10",
                    "--log-level",
                    "error",
                    "--log-json",
                    str(tmp_path / "events.jsonl"),
                    "--metrics-out",
                    str(tmp_path / "m.json"),
                ]
            )
            == 0
        )
        trace_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "report",
                    str(tmp_path / "m.json"),
                    "--trace-export",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert "chrome trace" in capsys.readouterr().out
        trace = json.loads(trace_path.read_text())
        manifest = json.loads((tmp_path / "m.json").read_text())
        stages = [r["stage"] for r in manifest["stage_reports"]]
        assert stages == ["walks", "train"]
        assert validate_chrome_trace(trace, stage_names=stages) == []

    def test_trace_export_requires_events(self, tmp_path, capsys):
        from repro.obs.manifest import write_manifest
        from repro.obs.metrics import MetricsRegistry

        manifest_path = tmp_path / "m.json"
        write_manifest(manifest_path, registry=MetricsRegistry())
        rc = main(
            [
                "report",
                str(manifest_path),
                "--trace-export",
                str(tmp_path / "t.json"),
            ]
        )
        assert rc == 2
        assert "event stream" in capsys.readouterr().err
