"""Telemetry under chaos: a killed Hogwild worker must leave a parseable
event stream, a valid manifest, and no shared-memory segments behind."""

import io

import numpy as np
import pytest

from repro.core.trainer import TrainConfig
from repro.graph.generators import planted_partition
from repro.obs.logging import parse_jsonl
from repro.obs.manifest import load_manifest
from repro.obs.recorder import ObsConfig, session
from repro.parallel.hogwild import (
    hogwild_epoch_task,
    hogwild_supported,
    train_hogwild,
)
from repro.resilience.chaos import FaultInjector, InjectedFault
from repro.walks.engine import RandomWalkConfig, generate_walks

from tests.parallel.test_shm import shm_entries

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not hogwild_supported(), reason="platform has no shared memory"
    ),
]


@pytest.fixture(scope="module")
def corpus():
    graph = planted_partition(n=90, groups=3, alpha=0.7, inter_edges=10, seed=0)
    return generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=5)
    )


@pytest.fixture()
def no_leaks():
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestKilledWorker:
    def test_stream_and_manifest_survive_a_worker_kill(
        self, corpus, tmp_path, no_leaks
    ):
        events_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "run.json"
        # The first epoch task to run inside a pool worker hard-exits
        # (os._exit, like an OOM kill); the once-marker lets the retried
        # pool pass succeed.
        injector = FaultInjector(
            hogwild_epoch_task,
            exit_on_calls={1},
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        config = TrainConfig(
            dim=12, epochs=4, batch_size=128, seed=3, early_stop=False, workers=2
        )
        cfg = ObsConfig(
            log_level="error",
            log_json=str(events_path),
            metrics_out=str(manifest_path),
        )
        with session(cfg, run_config={"chaos": "worker-kill"}, stream=io.StringIO()):
            result = train_hogwild(corpus, config, task_fn=injector)

        assert (tmp_path / "fired").exists(), "fault never fired"
        assert result.epochs_run == config.epochs
        assert np.all(np.isfinite(result.vectors))

        # No torn lines: the dead worker never shared the parent's file
        # handle (fork guard), so parse_jsonl succeeds on every line.
        events = parse_jsonl(events_path)
        names = [e["event"] for e in events]
        assert names[0] == "run.begin" and names[-1] == "run.end"
        # The parent-side pool saw the breakage and said so: the
        # persistent pool respawns the dead worker in place
        # (pool.worker_respawn); with the pool disabled the legacy
        # executor ladder retries the broken pass (pool.retry).
        assert "pool.worker_respawn" in names or "pool.retry" in names
        epoch_ends = [
            e for e in events
            if e["event"] == "span.end" and e["span"] == "train.epoch"
        ]
        assert len(epoch_ends) == config.epochs
        assert all(e["status"] == "ok" for e in epoch_ends)

        manifest = load_manifest(manifest_path)
        counters = manifest["metrics"]["counters"]
        assert counters["train.epochs_run"] == config.epochs
        assert manifest["config"] == {"chaos": "worker-kill"}


class TestInjectedFaultEvents:
    def test_in_process_fault_is_recorded(self, tmp_path):
        events_path = tmp_path / "events.jsonl"

        def target(x):
            return x + 1

        injector = FaultInjector(target, fail_on_calls={1})
        cfg = ObsConfig(log_level="error", log_json=str(events_path))
        with session(cfg, stream=io.StringIO()) as rec:
            with pytest.raises(InjectedFault):
                injector(1)
            assert injector(1) == 2
            counters = rec.registry.snapshot()["counters"]
        assert counters["fault.injected"] == 1
        faults = [
            e for e in parse_jsonl(events_path) if e["event"] == "fault.injected"
        ]
        assert len(faults) == 1
        assert faults[0]["kind"] == "fail"
        assert faults[0]["call"] == 1
