"""Run manifest: schema, validation, fingerprints, atomic writes."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_KIND,
    REQUIRED_KEYS,
    SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    config_fingerprint,
    host_info,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("walks.total", 240)
    reg.set("train.lr", 0.01)
    reg.observe("train.epoch_seconds", 0.5)
    return reg


class TestBuild:
    def test_contains_every_required_key(self):
        manifest = build_manifest(_registry(), run_config={"dim": 8})
        for key in REQUIRED_KEYS:
            assert key in manifest
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["config"] == {"dim": 8}
        assert manifest["metrics"]["counters"]["walks.total"] == 240.0

    def test_host_block_describes_the_machine(self):
        host = host_info()
        assert host["cpu_count"] >= 1
        assert host["cpu_affinity"] >= 1
        assert host["python"].count(".") == 2

    def test_is_json_serializable(self):
        manifest = build_manifest(_registry())
        json.dumps(manifest)  # must not raise


class TestFingerprint:
    def test_key_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_different_configs_differ(self):
        assert config_fingerprint({"dim": 8}) != config_fingerprint({"dim": 16})

    def test_short_stable_hex(self):
        fp = config_fingerprint({"dim": 8})
        assert len(fp) == 16
        assert fp == config_fingerprint({"dim": 8})


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.json"
        written = write_manifest(
            path,
            registry=_registry(),
            run_config={"dim": 8},
            events_path=tmp_path / "e.jsonl",
        )
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(written, default=str))
        assert loaded["events_path"].endswith("e.jsonl")

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "run.json"
        write_manifest(path, registry=_registry())
        assert {p.name for p in tmp_path.iterdir()} == {"run.json"}

    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="no manifest"):
            load_manifest(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            load_manifest(path)


class TestValidate:
    def test_missing_keys_listed(self):
        manifest = build_manifest(_registry())
        del manifest["host"]
        del manifest["metrics"]
        with pytest.raises(ManifestError, match="host.*metrics"):
            validate_manifest(manifest)

    def test_wrong_kind_rejected(self):
        manifest = build_manifest(_registry())
        manifest["kind"] = "something-else"
        with pytest.raises(ManifestError, match="not a run manifest"):
            validate_manifest(manifest)

    def test_non_object_rejected(self):
        with pytest.raises(ManifestError, match="JSON object"):
            validate_manifest([1, 2, 3])

    def test_metrics_must_have_the_three_groups(self):
        manifest = build_manifest(_registry())
        manifest["metrics"] = {"counters": {}}
        with pytest.raises(ManifestError, match="counters/gauges/histograms"):
            validate_manifest(manifest)
