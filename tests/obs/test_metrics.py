"""Metrics registry: instrument semantics, snapshots, and the null path."""

import math
import time

import pytest

from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_increments(self):
        reg = MetricsRegistry()
        reg.inc("walks.total")
        reg.inc("walks.total", 4)
        assert reg.counter("walks.total").snapshot() == 5.0

    def test_refuses_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.inc("x", -1)


class TestGauge:
    def test_nan_until_set_then_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("train.lr")
        assert math.isnan(gauge.snapshot())
        reg.set("train.lr", 0.025)
        reg.set("train.lr", 0.01)
        assert gauge.snapshot() == 0.01


class TestHistogram:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.observe("t", v)
        snap = reg.histogram("t").snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["p50"] in (2.0, 3.0)
        assert snap["p95"] == 4.0
        assert snap["p99"] == 4.0
        assert "sample_capped" not in snap

    def test_p99_tracks_tail(self):
        hist = MetricsRegistry().histogram("t")
        for v in range(100):
            hist.observe(float(v))
        snap = hist.snapshot()
        assert snap["p99"] >= snap["p95"] >= snap["p50"]
        assert snap["p99"] == 99.0

    def test_empty_snapshot_is_just_count(self):
        assert MetricsRegistry().histogram("t").snapshot() == {"count": 0}

    def test_exact_beyond_sample_cap(self):
        hist = MetricsRegistry().histogram("t")
        for _ in range(HISTOGRAM_SAMPLE_CAP + 100):
            hist.observe(1.0)
        snap = hist.snapshot()
        # count/sum stay exact even though the percentile sample is capped
        assert snap["count"] == HISTOGRAM_SAMPLE_CAP + 100
        assert snap["sum"] == float(HISTOGRAM_SAMPLE_CAP + 100)
        # capped percentiles are flagged so consumers can tell
        # estimated-from-head values from exact ones
        assert snap["sample_capped"] is True

    def test_timer_observes_seconds(self):
        reg = MetricsRegistry()
        with reg.time("phase") as t:
            time.sleep(0.001)
        assert t.seconds > 0
        snap = reg.histogram("phase").snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(t.seconds)


class TestRegistry:
    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TypeError, match="is a Counter"):
            reg.gauge("x")

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set("g", 2.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_iteration_is_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        assert list(reg) == ["a", "b"]
        assert len(reg) == 2


class TestNullRegistry:
    def test_everything_is_inert(self):
        reg = NullRegistry()
        reg.inc("x", 5)
        reg.set("y", 1.0)
        reg.observe("z", 2.0)
        assert reg.counter("x").snapshot() == 0.0
        assert math.isnan(reg.gauge("y").snapshot())
        assert reg.histogram("z").snapshot() == {"count": 0}
        assert len(reg) == 0 and list(reg) == []
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_timer_context_works(self):
        with NULL_REGISTRY.time("x") as t:
            pass
        assert t.seconds == 0.0

    def test_shared_singletons(self):
        # the disabled hot path must not allocate per call
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.time("a") is reg.time("b")
        assert not reg.enabled
