"""Recorder hub: install/use scopes, fork guard, and the session lifecycle."""

import io
import logging

import pytest

from repro.obs.logging import ROOT_LOGGER_NAME, parse_jsonl
from repro.obs.manifest import load_manifest
from repro.obs.recorder import (
    NULL_RECORDER,
    ObsConfig,
    Recorder,
    current_recorder,
    install,
    session,
    use,
)


class TestObsConfig:
    def test_defaults(self):
        cfg = ObsConfig()
        assert cfg.enabled and cfg.log_level == "info"
        assert cfg.log_json is None and cfg.metrics_out is None
        assert not cfg.trace

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="log_level"):
            ObsConfig(log_level="loud")


class TestCurrentRecorder:
    def test_default_is_the_null_recorder(self):
        assert current_recorder() is NULL_RECORDER
        assert not current_recorder().enabled

    def test_use_installs_and_restores(self):
        rec = Recorder()
        with use(rec):
            assert current_recorder() is rec
            with use(NULL_RECORDER):
                assert current_recorder() is NULL_RECORDER
            assert current_recorder() is rec
        assert current_recorder() is NULL_RECORDER

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use(Recorder()):
                raise RuntimeError("boom")
        assert current_recorder() is NULL_RECORDER

    def test_install_none_clears(self):
        install(Recorder())
        try:
            assert current_recorder().enabled
        finally:
            install(None)
        assert current_recorder() is NULL_RECORDER

    def test_foreign_pid_sees_the_null_recorder(self):
        # A forked worker inherits the parent's module globals; the PID
        # pin must make it observe the no-op instead of the live sinks.
        rec = Recorder()
        with use(rec):
            rec.pid = rec.pid + 1  # simulate "some other process"
            assert current_recorder() is NULL_RECORDER


class TestNullRecorder:
    def test_all_methods_are_noops(self):
        rec = NULL_RECORDER
        rec.event("anything", level="error", x=1)
        rec.inc("c")
        rec.set("g", 1.0)
        rec.observe("h", 2.0)
        with rec.span("phase", n=3) as span:
            span.annotate(loss=0.1)
        with rec.time("t") as timer:
            pass
        assert timer.seconds == 0.0
        assert rec.registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestSession:
    def test_none_or_disabled_config_is_the_noop_path(self, tmp_path):
        manifest = tmp_path / "run.json"
        with session(None) as rec:
            assert rec is NULL_RECORDER
        cfg = ObsConfig(enabled=False, metrics_out=str(manifest))
        with session(cfg) as rec:
            assert rec is NULL_RECORDER
        assert not manifest.exists()  # disabled writes nothing at all

    def test_full_lifecycle_writes_events_and_manifest(self, tmp_path):
        events = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "run.json"
        cfg = ObsConfig(
            log_level="error",
            log_json=str(events),
            metrics_out=str(manifest_path),
        )
        with session(cfg, run_config={"dim": 8}, stream=io.StringIO()) as rec:
            assert current_recorder() is rec
            rec.inc("train.epochs_run", 2)
            with rec.span("train.epoch", epoch=0):
                pass
        assert current_recorder() is NULL_RECORDER
        names = [e["event"] for e in parse_jsonl(events)]
        assert names[0] == "run.begin"
        assert names[-1] == "run.end"
        assert "span.begin" in names and "span.end" in names
        manifest = load_manifest(manifest_path)
        assert manifest["config"] == {"dim": 8}
        assert manifest["metrics"]["counters"]["train.epochs_run"] == 2.0
        assert manifest["events_path"] == str(events)

    def test_manifest_written_even_when_the_body_raises(self, tmp_path):
        manifest_path = tmp_path / "run.json"
        cfg = ObsConfig(log_level="error", metrics_out=str(manifest_path))
        with pytest.raises(RuntimeError, match="boom"):
            with session(cfg, stream=io.StringIO()) as rec:
                rec.inc("partial.work")
                raise RuntimeError("boom")
        manifest = load_manifest(manifest_path)
        assert manifest["metrics"]["counters"]["partial.work"] == 1.0

    def test_trace_mirrors_spans_to_the_human_sink(self, tmp_path):
        stream = io.StringIO()
        cfg = ObsConfig(log_level="error", trace=True)
        with session(cfg, stream=stream) as rec:
            with rec.span("walks.generate"):
                pass
        out = stream.getvalue()
        assert "span.begin" in out and "span.end" in out

    def test_without_trace_spans_stay_off_the_human_sink(self, tmp_path):
        stream = io.StringIO()
        with session(ObsConfig(log_level="error"), stream=stream) as rec:
            with rec.span("walks.generate"):
                pass
        assert "span." not in stream.getvalue()

    def test_handlers_fully_detached_after_session(self, tmp_path):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        before = list(root.handlers)
        cfg = ObsConfig(log_json=str(tmp_path / "e.jsonl"))
        with session(cfg, stream=io.StringIO()):
            assert len(root.handlers) == len(before) + 2
        assert root.handlers == before
