"""Structured logging: sinks, formatters, and the JSONL event stream."""

import io
import json
import logging
from pathlib import Path

import numpy as np
import pytest

from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    parse_jsonl,
    teardown_logging,
)


@pytest.fixture()
def sinks(tmp_path):
    """A human StringIO sink + JSONL file at the given level."""
    def _make(level="info"):
        stream = io.StringIO()
        path = tmp_path / "events.jsonl"
        handlers = configure_logging(level, json_path=path, stream=stream)
        made.append(handlers)
        return stream, path

    made: list = []
    yield _make
    for handlers in made:
        teardown_logging(handlers)


class TestGetLogger:
    def test_lives_under_repro_tree(self):
        assert get_logger().stdlib.name == ROOT_LOGGER_NAME
        assert get_logger("walks.engine").stdlib.name == "repro.walks.engine"


class TestHumanSink:
    def test_event_and_fields_on_one_line(self, sinks):
        stream, _ = sinks("info")
        get_logger("x").info("walks.done", walks=600, rate=1234.5)
        line = stream.getvalue().strip()
        assert "info repro.x walks.done walks=600 rate=1234.5" in line

    def test_level_gates_human_sink(self, sinks):
        stream, _ = sinks("warning")
        log = get_logger("x")
        log.info("quiet.event")
        log.warning("loud.event", n=1)
        out = stream.getvalue()
        assert "quiet.event" not in out
        assert "loud.event" in out

    def test_values_with_spaces_are_quoted(self, sinks):
        stream, _ = sinks("info")
        get_logger().info("evt", msg="two words")
        assert 'msg="two words"' in stream.getvalue()


class TestJsonlSink:
    def test_records_debug_regardless_of_console_level(self, sinks):
        _, path = sinks("error")
        get_logger("x").debug("span.begin", span="walks.generate")
        events = parse_jsonl(path)
        assert events == [
            {
                "ts": events[0]["ts"],
                "level": "debug",
                "logger": "repro.x",
                "event": "span.begin",
                "span": "walks.generate",
            }
        ]

    def test_fields_survive_verbatim(self, sinks):
        _, path = sinks()
        get_logger().info("evt", count=3, loss=0.25, name="a")
        (event,) = parse_jsonl(path)
        assert event["count"] == 3 and event["loss"] == 0.25
        assert event["name"] == "a"

    def test_exotic_fields_are_coerced_not_dropped(self, sinks):
        _, path = sinks()
        get_logger().info(
            "evt", np_val=np.float32(1.5), path=Path("/tmp/x"), obj=object()
        )
        (event,) = parse_jsonl(path)
        assert event["np_val"] == 1.5
        assert event["path"] == "/tmp/x"
        assert event["obj"].startswith("<object object")


class TestLifecycle:
    def test_teardown_detaches_handlers(self, tmp_path):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        before = list(root.handlers)
        handlers = configure_logging(
            "info", json_path=tmp_path / "e.jsonl", stream=io.StringIO()
        )
        assert len(root.handlers) == len(before) + 2
        teardown_logging(handlers)
        assert root.handlers == before

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level must be one of"):
            configure_logging("loud")


class TestParseJsonl:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert [e["event"] for e in parse_jsonl(path)] == ["a", "b"]

    def test_torn_line_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event": "a"}\n{"event": "tor')
        with pytest.raises(json.JSONDecodeError):
            parse_jsonl(path)

    def test_accepts_open_file_objects(self):
        events = parse_jsonl(io.StringIO('{"event": "a"}\n'))
        assert events[0]["event"] == "a"
