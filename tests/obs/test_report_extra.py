"""``repro report`` edge cases: wound-down runs, torn streams, comparisons."""

import json

import pytest

from repro.cli import main
from repro.obs.logging import parse_jsonl
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import REGRESSION_THRESHOLD, compare_manifests, render_report


def _registry(**gauges):
    reg = MetricsRegistry()
    for name, value in gauges.items():
        reg.set(name.replace("__", "."), value)
    return reg


class TestWoundDownRuns:
    def test_interrupted_manifest_renders(self):
        manifest = build_manifest(
            _registry(),
            status="interrupted",
            interrupt_reason="signal:SIGTERM",
            stage_reports=[
                {"stage": "walks", "seconds": 1.5, "skipped": False,
                 "resources": None},
            ],
        )
        text = render_report(manifest)
        assert "status: interrupted (reason: signal:SIGTERM)" in text
        # stage rows with no resource delta still render (as '-')
        assert "stage resources" in text
        assert "walks" in text

    def test_failed_manifest_renders(self):
        manifest = build_manifest(
            _registry(), status="failed", interrupt_reason="worker died"
        )
        assert "status: failed (reason: worker died)" in render_report(manifest)

    def test_report_cli_on_interrupted_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        write_manifest(
            path,
            registry=_registry(),
            status="interrupted",
            interrupt_reason="deadline",
        )
        assert main(["report", str(path)]) == 0
        assert "status: interrupted" in capsys.readouterr().out


class TestTruncatedEvents:
    def _torn_stream(self, tmp_path):
        events = tmp_path / "events.jsonl"
        lines = [
            json.dumps(
                {
                    "ts": float(i),
                    "event": "span.end",
                    "span": "pipeline.stage",
                    "seconds": 0.5,
                    "status": "ok",
                    "level": "info",
                }
            )
            for i in range(3)
        ]
        # a hard crash mid-write leaves a torn final line
        events.write_text("\n".join(lines) + '\n{"ts": 3.0, "event": "spa')
        return events

    def test_parse_jsonl_skip_vs_raise(self, tmp_path):
        events = self._torn_stream(tmp_path)
        assert len(parse_jsonl(events, on_error="skip")) == 3
        with pytest.raises(json.JSONDecodeError):
            parse_jsonl(events)

    def test_report_survives_torn_stream(self, tmp_path):
        events = self._torn_stream(tmp_path)
        manifest = build_manifest(_registry(), events_path=events)
        text = render_report(manifest, events_path=events)
        assert "pipeline.stage" in text  # the intact lines still report

    def test_report_cli_with_torn_events(self, tmp_path, capsys):
        events = self._torn_stream(tmp_path)
        path = tmp_path / "m.json"
        write_manifest(path, registry=_registry(), events_path=events)
        assert main(["report", str(path), "--events", str(events)]) == 0
        assert "pipeline.stage" in capsys.readouterr().out


def _manifest_with(*, wall=None, gauges=None, hist_mean=None, config=None):
    reg = MetricsRegistry()
    for name, value in (gauges or {}).items():
        reg.set(name, value)
    if hist_mean is not None:
        reg.observe("train.epoch_seconds", hist_mean)
    stage_reports = None
    if wall is not None:
        stage_reports = [
            {
                "stage": "train",
                "seconds": wall,
                "skipped": False,
                "resources": {"peak_rss_kb": 1000.0},
            }
        ]
    return build_manifest(
        reg, run_config=config, stage_reports=stage_reports
    )


class TestCompareManifests:
    def test_slower_wall_is_a_regression(self):
        a = _manifest_with(wall=1.0)
        b = _manifest_with(wall=1.0 * (1 + REGRESSION_THRESHOLD) + 0.1)
        text = compare_manifests(a, b)
        assert "stage.train.wall_s" in text
        flagged = [ln for ln in text.splitlines() if ln.endswith("<<")]
        assert any("stage.train.wall_s" in ln for ln in flagged)

    def test_faster_wall_is_not_flagged(self):
        a = _manifest_with(wall=2.0)
        b = _manifest_with(wall=1.0)
        text = compare_manifests(a, b)
        assert not any(
            ln.endswith("<<") and "wall_s" in ln for ln in text.splitlines()
        )

    def test_lower_throughput_is_a_regression(self):
        a = _manifest_with(gauges={"train.words_per_sec": 1000.0})
        b = _manifest_with(gauges={"train.words_per_sec": 500.0})
        text = compare_manifests(a, b)
        assert any(
            "train.words_per_sec" in ln and ln.endswith("<<")
            for ln in text.splitlines()
        )

    def test_higher_throughput_is_not_flagged(self):
        a = _manifest_with(gauges={"train.words_per_sec": 500.0})
        b = _manifest_with(gauges={"train.words_per_sec": 1000.0})
        text = compare_manifests(a, b)
        assert not any(ln.endswith("<<") for ln in text.splitlines())

    def test_histogram_means_compare(self):
        a = _manifest_with(hist_mean=1.0)
        b = _manifest_with(hist_mean=2.0)
        text = compare_manifests(a, b)
        assert "train.epoch_seconds.mean" in text
        assert "histogram means" in text

    def test_config_mismatch_is_noted(self):
        a = _manifest_with(wall=1.0, config={"dim": 64})
        b = _manifest_with(wall=1.0, config={"dim": 128})
        assert "configs differ" in compare_manifests(a, b)

    def test_nothing_comparable(self):
        a = build_manifest(MetricsRegistry())
        b = _manifest_with(gauges={"other.gauge": 1.0})
        assert "(no comparable rows)" in compare_manifests(a, b)


class TestCompareCli:
    def test_compare_renders_and_returns_zero(self, tmp_path, capsys):
        a_path, b_path = tmp_path / "a.json", tmp_path / "b.json"
        reg = MetricsRegistry()
        reg.set("train.words_per_sec", 1000.0)
        write_manifest(a_path, registry=reg)
        reg2 = MetricsRegistry()
        reg2.set("train.words_per_sec", 400.0)
        write_manifest(b_path, registry=reg2)
        assert main(["report", str(a_path), "--compare", str(b_path)]) == 0
        out = capsys.readouterr().out
        assert "manifest comparison" in out
        assert "<<" in out

    def test_compare_rejects_invalid_candidate(self, tmp_path, capsys):
        a_path = tmp_path / "a.json"
        write_manifest(a_path, registry=MetricsRegistry())
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["report", str(a_path), "--compare", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
