"""Trace spans: begin/end events, nesting, errors, duration histograms."""

import io

import pytest

from repro.obs.logging import (
    configure_logging,
    get_logger,
    parse_jsonl,
    teardown_logging,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer


@pytest.fixture()
def traced(tmp_path):
    """A Tracer wired to a JSONL sink; yields (tracer, read_events)."""
    path = tmp_path / "events.jsonl"
    handlers = configure_logging("error", json_path=path, stream=io.StringIO())
    tracer = Tracer(get_logger("test"), MetricsRegistry())
    yield tracer, lambda: parse_jsonl(path)
    teardown_logging(handlers)


class TestSpan:
    def test_begin_and_end_events(self, traced):
        tracer, events = traced
        with tracer.span("walks.generate", n=60):
            pass
        begin, end = events()
        assert begin["event"] == "span.begin"
        assert begin["span"] == "walks.generate"
        assert begin["n"] == 60
        assert begin["parent_id"] is None
        assert end["event"] == "span.end"
        assert end["span_id"] == begin["span_id"]
        assert end["status"] == "ok"
        assert end["seconds"] >= 0

    def test_nesting_builds_the_path(self, traced):
        tracer, events = traced
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
        assert tracer.current is None
        by_key = {(e["event"], e["span"]): e for e in events()}
        outer_begin = by_key[("span.begin", "outer")]
        inner_begin = by_key[("span.begin", "inner")]
        assert inner_begin["path"] == "outer>inner"
        assert inner_begin["parent_id"] == outer_begin["span_id"]
        # inner ends before outer
        names = [e["span"] for e in events() if e["event"] == "span.end"]
        assert names == ["inner", "outer"]

    def test_annotate_rides_the_end_event_only(self, traced):
        tracer, events = traced
        with tracer.span("train.epoch", epoch=0) as span:
            span.annotate(loss=0.5)
        begin, end = events()
        assert "loss" not in begin
        assert end["loss"] == 0.5
        assert end["epoch"] == 0

    def test_exception_marks_error_and_propagates(self, traced):
        tracer, events = traced
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("train.run"):
                raise RuntimeError("boom")
        end = [e for e in events() if e["event"] == "span.end"][0]
        assert end["status"] == "error"
        assert "RuntimeError('boom')" in end["exception"]
        assert tracer.current is None  # stack unwound

    def test_duration_lands_in_histogram(self, traced):
        tracer, _ = traced
        with tracer.span("phase"):
            pass
        with tracer.span("phase"):
            pass
        snap = tracer.registry.histogram("span.phase.seconds").snapshot()
        assert snap["count"] == 2

    def test_span_ids_are_unique_and_increasing(self, traced):
        tracer, _ = traced
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert b.span_id > a.span_id


class TestNullSpan:
    def test_inert_context(self):
        with NULL_SPAN as span:
            span.annotate(anything=1)
        assert span is NULL_SPAN
        assert NULL_SPAN.name == ""
        assert NULL_SPAN.seconds == 0.0
