"""Live run monitoring: status file, slab attachment, and ``repro top``."""

import io
import json
import os
import time

import pytest

from repro.cli import main
from repro.obs.live import (
    STALE_AFTER,
    LiveStatusFile,
    attach_status_slab,
    read_status,
    render_top,
    slab_spec_from_json,
    slab_spec_to_json,
    top_command,
)
from repro.obs.recorder import ObsConfig, session
from repro.obs.slab import HOGWILD_SLOTS, MetricsSlab
from repro.parallel.hogwild import hogwild_supported
from repro.parallel.shm import shared_arrays


class TestSlabSpecJson:
    def test_roundtrip(self):
        if not hogwild_supported():
            pytest.skip("platform has no shared memory")
        with shared_arrays() as scope:
            shared = scope.create((2, len(HOGWILD_SLOTS)), "float64")
            slab = MetricsSlab.over(shared, HOGWILD_SLOTS)
            payload = slab_spec_to_json(slab.spec)
            json.dumps(payload)  # status-file storable
            back = slab_spec_from_json(payload)
            assert back == slab.spec


class TestLiveStatusFile:
    def test_writes_atomic_doc_with_identity(self, tmp_path):
        path = tmp_path / "status.json"
        live = LiveStatusFile(path)
        live.update(command="embed")
        doc = read_status(path)
        assert doc is not None
        assert doc["kind"] == "repro-live-status"
        assert doc["pid"] == os.getpid()
        assert doc["status"] == "running"
        assert doc["command"] == "embed"
        assert doc["updated_unix"] >= doc["started_unix"]

    def test_nested_dicts_merge_keywise(self, tmp_path):
        live = LiveStatusFile(tmp_path / "s.json")
        live.update(train={"workers": 2, "total_batches": 100})
        live.update(train={"batches_done": 40})
        doc = read_status(tmp_path / "s.json")
        assert doc["train"] == {
            "workers": 2,
            "total_batches": 100,
            "batches_done": 40,
        }
        # non-dict replaces wholesale
        live.update(train=None)
        assert read_status(tmp_path / "s.json")["train"] is None

    def test_write_failure_is_swallowed(self, tmp_path):
        live = LiveStatusFile(tmp_path / "no" / "such" / "dir" / "s.json")
        live.update(stage="walks")  # must not raise

    def test_read_status_rejects_garbage(self, tmp_path):
        assert read_status(tmp_path / "absent.json") is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"kind": "repro-live-st')
        assert read_status(torn) is None
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"kind": "something-else"}))
        assert read_status(other) is None


def _status_doc(**overrides):
    now = time.time()
    doc = {
        "kind": "repro-live-status",
        "schema_version": 1,
        "pid": os.getpid(),
        "status": "running",
        "command": "embed",
        "started_unix": now - 10.0,
        "updated_unix": now,
    }
    doc.update(overrides)
    return doc


class TestRenderTop:
    def test_header_shows_stage_position(self):
        frame = render_top(
            _status_doc(stage="train", stages=["walks", "train"])
        )
        assert "stage train (2/2)" in frame
        assert "running" in frame
        assert "[pid gone]" not in frame

    def test_flags_dead_pid_and_staleness(self):
        # a pid we know is gone: fork + exit, then reap
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child exits immediately
            os._exit(0)
        os.waitpid(pid, 0)
        assert "[pid gone]" in render_top(_status_doc(pid=pid))

        now = time.time()
        stale = _status_doc(updated_unix=now - STALE_AFTER - 5.0)
        assert "[stale" in render_top(stale, now=now)

    def test_progress_bar_and_eta(self):
        now = time.time()
        frame = render_top(
            _status_doc(
                train={
                    "workers": 2,
                    "epochs": 4,
                    "epoch": 1,
                    "total_batches": 100,
                    "batches_done": 50,
                    "started_unix": now - 10.0,
                }
            ),
            now=now,
        )
        assert " 50.0%" in frame
        assert "50/100 batches" in frame
        assert "5.0 batches/s" in frame
        assert "ETA 10s" in frame

    def test_worker_rows_fold_into_progress(self):
        now = time.time()
        rows = [
            {
                "batches": 20.0,
                "examples": 400.0,
                "loss_sum": 10.0,
                "epoch": 1.0,
                "cancel": 0.0,
                "updated": now - 0.5,
            },
            {
                "batches": 0.0,
                "examples": 0.0,
                "loss_sum": 0.0,
                "epoch": 0.0,
                "cancel": 0.0,
                "updated": 0.0,
            },
        ]
        frame = render_top(
            _status_doc(
                train={"total_batches": 100, "batches_done": 30, "epochs": 2},
            ),
            slab_rows=rows,
            now=now,
        )
        # live slab batches stack on top of the committed epoch count
        assert "50/100 batches" in frame
        assert "0.5000" in frame  # mean loss = 10 / 20
        lines = frame.splitlines()
        worker_lines = [ln for ln in lines if ln.strip().startswith(("0 ", "1 "))]
        assert len(worker_lines) == 2
        assert "-" in worker_lines[1]  # idle worker: no loss, no age

    def test_finished_run_renders_reason(self):
        frame = render_top(
            _status_doc(status="interrupted", interrupt_reason="signal:SIGTERM")
        )
        assert "run finished: interrupted (reason: signal:SIGTERM)" in frame


class TestTopCommand:
    def test_missing_file_once_is_rc2(self, tmp_path):
        out = io.StringIO()
        rc = top_command(tmp_path / "nope.json", once=True, stream=out)
        assert rc == 2
        assert "no status file" in out.getvalue()

    def test_missing_file_times_out(self, tmp_path):
        out = io.StringIO()
        start = time.monotonic()
        rc = top_command(
            tmp_path / "nope.json", interval=0.05, timeout=0.2, stream=out
        )
        assert rc == 2
        assert time.monotonic() - start < 5.0

    def test_finished_run_exits_zero(self, tmp_path):
        path = tmp_path / "s.json"
        live = LiveStatusFile(path)
        live.update(status="completed", command="embed")
        out = io.StringIO()
        assert top_command(path, stream=out) == 0
        assert "run finished: completed" in out.getvalue()

    @pytest.mark.skipif(
        not hogwild_supported(), reason="platform has no shared memory"
    )
    def test_renders_live_slab_rows(self, tmp_path):
        """A frame against a real shared slab another 'process' is writing."""
        path = tmp_path / "s.json"
        with shared_arrays() as scope:
            shared = scope.create((2, len(HOGWILD_SLOTS)), "float64")
            slab = MetricsSlab.over(shared, HOGWILD_SLOTS)
            now = time.time()
            slab.put(0, "batches", 12)
            slab.put(0, "examples", 240)
            slab.put(0, "loss_sum", 6.0)
            slab.put(0, "epoch", 1)
            slab.put(0, "updated", now)
            slab.put(1, "batches", 8)
            slab.put(1, "examples", 160)
            slab.put(1, "updated", now)

            live = LiveStatusFile(path)
            live.update(
                command="embed",
                stage="train",
                stages=["walks", "train"],
                slab=slab_spec_to_json(slab.spec),
                train={
                    "workers": 2,
                    "epochs": 2,
                    "epoch": 0,
                    "total_batches": 40,
                    "batches_done": 0,
                    "started_unix": now - 4.0,
                },
            )
            out = io.StringIO()
            assert top_command(path, once=True, stream=out) == 0
            frame = out.getvalue()
            assert "stage train (2/2)" in frame
            assert "20/40 batches" in frame  # 12 + 8 live
            assert "0.5000" in frame  # worker 0 mean loss
            assert "ETA" in frame

    def test_attach_returns_none_for_dead_segment(self):
        status = _status_doc(
            slab={
                "name": "repro_gone_segment",
                "shape": [1, len(HOGWILD_SLOTS)],
                "dtype": "float64",
                "slots": list(HOGWILD_SLOTS),
            }
        )
        assert attach_status_slab(status) is None


@pytest.mark.skipif(
    not hogwild_supported(), reason="platform has no shared memory"
)
class TestLiveEndToEnd:
    def test_hogwild_run_keeps_status_current(self, tmp_path):
        """A real monitored run: session wiring, train fan-out, teardown."""
        from repro.core.trainer import TrainConfig
        from repro.graph.generators import planted_partition
        from repro.parallel.hogwild import train_hogwild
        from repro.walks.engine import RandomWalkConfig, generate_walks

        graph = planted_partition(
            n=90, groups=3, alpha=0.7, inter_edges=10, seed=0
        )
        corpus = generate_walks(
            graph, RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=5)
        )
        path = tmp_path / "status.json"
        cfg = ObsConfig(log_level="error", status_path=str(path))
        seen_mid_run = []
        with session(cfg, run_config={"command": "embed"}, stream=io.StringIO()):
            config = TrainConfig(
                dim=12, epochs=2, batch_size=128, seed=3,
                early_stop=False, workers=2,
            )

            def spy(epoch, loss):
                seen_mid_run.append(read_status(path))

            train_hogwild(corpus, config, epoch_callback=spy)

        # mid-run frames saw the live fan-out and the slab handle
        assert seen_mid_run and all(doc is not None for doc in seen_mid_run)
        mid = seen_mid_run[0]
        assert mid["command"] == "embed"
        assert mid["slab"] is not None
        assert mid["train"]["workers"] == 2
        assert mid["train"]["total_batches"] > 0

        final = read_status(path)
        assert final["status"] == "completed"
        assert final["slab"] is None  # torn down with the segment
        assert final["train"]["batches_done"] == final["train"]["total_batches"]

    def test_cli_top_smoke(self, tmp_path, capsys):
        graph = tmp_path / "g.edges"
        status = tmp_path / "status.json"
        assert main(["generate", "-o", str(graph), "--n", "40", "--seed", "1"]) == 0
        assert (
            main(
                [
                    "embed",
                    str(graph),
                    "-o",
                    str(tmp_path / "v.npz"),
                    "--dim",
                    "8",
                    "--epochs",
                    "2",
                    "--walks",
                    "2",
                    "--length",
                    "10",
                    "--log-level",
                    "error",
                    "--status-file",
                    str(status),
                ]
            )
            == 0
        )
        assert main(["top", str(status), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run finished: completed" in out
        assert main(["top", str(tmp_path / "nope.json"), "--once"]) == 2
