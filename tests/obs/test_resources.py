"""Per-stage resource accounting: snapshots and deltas."""

import gc
import json
import time

from repro.obs.resources import ResourceSnapshot, resource_delta


def test_capture_has_plausible_values():
    snap = ResourceSnapshot.capture()
    assert snap.wall > 0
    assert snap.cpu_user >= 0 and snap.cpu_system >= 0
    assert snap.rss_kb > 0
    assert snap.peak_rss_kb >= 0
    assert snap.allocated_blocks > 0


def test_delta_tracks_cpu_bound_work():
    before = ResourceSnapshot.capture()
    deadline = time.perf_counter() + 0.2
    while time.perf_counter() < deadline:
        sum(range(500))
    delta = resource_delta(before, ResourceSnapshot.capture())
    assert delta["wall_s"] >= 0.15
    assert delta["cpu_s"] > 0.05
    # a single-threaded spin should land near 1 core of utilization
    assert 0.2 < delta["cpu_utilization"] < 2.0


def test_delta_tracks_allocation_growth():
    # Flush garbage left by earlier tests first: a collection between the
    # two snapshots would offset the growth this test measures.
    gc.collect()
    before = ResourceSnapshot.capture()
    keep = [list(range(100)) for _ in range(10_000)]
    delta = resource_delta(before, ResourceSnapshot.capture())
    assert delta["allocated_blocks_delta"] > 5_000
    del keep


def test_delta_is_json_ready():
    before = ResourceSnapshot.capture()
    delta = resource_delta(before, ResourceSnapshot.capture())
    text = json.dumps(delta)
    assert set(json.loads(text)) == {
        "wall_s",
        "cpu_s",
        "child_cpu_s",
        "cpu_utilization",
        "rss_delta_kb",
        "peak_rss_kb",
        "gc_collections",
        "gc_collected",
        "allocated_blocks_delta",
    }


def test_zero_wall_does_not_divide_by_zero():
    snap = ResourceSnapshot.capture()
    delta = resource_delta(snap, snap)
    assert delta["wall_s"] == 0.0
    assert delta["cpu_utilization"] == 0.0
