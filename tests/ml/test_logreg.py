"""Tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.ml.logreg import LogisticRegression


def blobs(rng, centers, n_per=40, scale=0.4):
    x = np.vstack(
        [np.asarray(c) + rng.normal(scale=scale, size=(n_per, len(c))) for c in centers]
    )
    y = np.repeat(np.arange(len(centers)), n_per)
    return x, y


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            LogisticRegression(lr=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)

    def test_fit_inputs(self, rng):
        clf = LogisticRegression()
        with pytest.raises(ValueError):
            clf.fit(rng.random(5), np.zeros(5))
        with pytest.raises(ValueError):
            clf.fit(rng.random((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            clf.fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(ValueError):
            clf.fit(rng.random((5, 2)), np.zeros(5))  # single class

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_dim_mismatch(self, rng):
        clf = LogisticRegression().fit(rng.random((10, 3)), rng.integers(0, 2, 10))
        with pytest.raises(ValueError):
            clf.predict(rng.random((2, 4)))


class TestBinary:
    def test_separable(self, rng):
        x, y = blobs(rng, [(0, 0), (5, 5)])
        clf = LogisticRegression().fit(x, y)
        assert clf.score(x, y) > 0.98

    def test_loss_decreases(self, rng):
        x, y = blobs(rng, [(0, 0), (3, 3)])
        clf = LogisticRegression(max_iter=100).fit(x, y)
        assert clf.loss_history_[-1] < clf.loss_history_[0]

    def test_probabilities_normalized(self, rng):
        x, y = blobs(rng, [(0, 0), (4, 4)])
        clf = LogisticRegression().fit(x, y)
        probs = clf.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    def test_confidence_grows_with_distance(self, rng):
        x, y = blobs(rng, [(0, 0), (6, 0)])
        clf = LogisticRegression().fit(x, y)
        near = clf.predict_proba(np.asarray([[3.2, 0.0]]))[0, 1]
        far = clf.predict_proba(np.asarray([[6.0, 0.0]]))[0, 1]
        assert far > near


class TestMulticlass:
    def test_three_classes(self, rng):
        x, y = blobs(rng, [(0, 0), (6, 0), (0, 6)])
        clf = LogisticRegression().fit(x, y)
        assert clf.score(x, y) > 0.97

    def test_string_labels(self, rng):
        x, _ = blobs(rng, [(0, 0), (6, 6)])
        y = np.asarray(["no"] * 40 + ["yes"] * 40)
        clf = LogisticRegression().fit(x, y)
        assert set(clf.predict(x)) <= {"no", "yes"}
        assert clf.score(x, y) > 0.95

    def test_l2_shrinks_weights(self, rng):
        x, y = blobs(rng, [(0, 0), (2, 2)])
        small = LogisticRegression(l2=1e-6).fit(x, y)
        large = LogisticRegression(l2=1.0).fit(x, y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()

    def test_feature_scaling_invariance(self, rng):
        """Standardization inside fit makes wildly-scaled features fine."""
        x, y = blobs(rng, [(0, 0), (4, 4)])
        x_scaled = x * np.asarray([1e-4, 1e4])
        clf = LogisticRegression().fit(x_scaled, y)
        assert clf.score(x_scaled, y) > 0.95

    def test_better_than_knn_on_overlapping_gaussians(self, rng):
        """The 'not the best classifier' remark: logreg beats 1-NN on
        noisy, overlapping classes (1-NN memorizes noise)."""
        from repro.ml.knn import KNNClassifier

        x, y = blobs(rng, [(0, 0), (1.5, 1.5)], n_per=150, scale=1.0)
        test_x, test_y = blobs(rng, [(0, 0), (1.5, 1.5)], n_per=80, scale=1.0)
        lr_acc = LogisticRegression().fit(x, y).score(test_x, test_y)
        knn_acc = KNNClassifier(k=1, metric="euclidean").fit(x, y).score(test_x, test_y)
        assert lr_acc >= knn_acc
