"""Tests for clustering/classification metrics, especially the paper's
pairwise precision/recall."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    adjusted_rand_index,
    confusion_counts,
    normalized_mutual_information,
    pairwise_f1,
    pairwise_precision_recall,
    purity,
    silhouette_score,
)


def brute_force_pair_counts(truth, pred):
    """O(n²) reference implementation of pair TP/FP/FN/TN."""
    n = len(truth)
    tp = fp = fn = tn = 0
    for i in range(n):
        for j in range(i + 1, n):
            same_t = truth[i] == truth[j]
            same_p = pred[i] == pred[j]
            if same_t and same_p:
                tp += 1
            elif not same_t and same_p:
                fp += 1
            elif same_t and not same_p:
                fn += 1
            else:
                tn += 1
    return tp, fp, fn, tn


class TestPairwisePrecisionRecall:
    def test_perfect_clustering(self):
        truth = np.asarray([0, 0, 1, 1, 2, 2])
        p, r = pairwise_precision_recall(truth, truth)
        assert p == 1.0 and r == 1.0

    def test_relabeled_perfect(self):
        truth = np.asarray([0, 0, 1, 1])
        pred = np.asarray([7, 7, 3, 3])
        assert pairwise_precision_recall(truth, pred) == (1.0, 1.0)

    def test_all_one_cluster_recall_one(self):
        truth = np.asarray([0, 0, 1, 1])
        pred = np.zeros(4, dtype=int)
        p, r = pairwise_precision_recall(truth, pred)
        assert r == 1.0
        assert np.isclose(p, 2 / 6)  # 2 true pairs of 6 predicted

    def test_singletons_precision_one(self):
        truth = np.asarray([0, 0, 1, 1])
        pred = np.arange(4)
        p, r = pairwise_precision_recall(truth, pred)
        assert p == 1.0  # vacuous
        assert r == 0.0

    def test_matches_brute_force(self, rng):
        truth = rng.integers(0, 4, 40)
        pred = rng.integers(0, 5, 40)
        tp, fp, fn, tn = brute_force_pair_counts(truth, pred)
        ctp, cfp, cfn, ctn = confusion_counts(truth, pred)
        assert (tp, fp, fn, tn) == (ctp, cfp, cfn, ctn)
        p, r = pairwise_precision_recall(truth, pred)
        assert np.isclose(p, tp / (tp + fp))
        assert np.isclose(r, tp / (tp + fn))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_precision_recall(np.zeros(3), np.zeros(4))

    def test_f1_harmonic_mean(self):
        truth = np.asarray([0, 0, 1, 1])
        pred = np.asarray([0, 0, 0, 1])
        p, r = pairwise_precision_recall(truth, pred)
        assert np.isclose(pairwise_f1(truth, pred), 2 * p * r / (p + r))


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.asarray([1, 2, 3]), np.asarray([1, 2, 4])) == pytest.approx(2 / 3)

    def test_strings(self):
        assert accuracy(np.asarray(["a", "b"]), np.asarray(["a", "b"])) == 1.0

    def test_empty(self):
        assert accuracy(np.asarray([]), np.asarray([])) == 1.0

    def test_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(2), np.zeros(3))


class TestPurity:
    def test_perfect(self):
        truth = np.asarray([0, 0, 1, 1])
        assert purity(truth, truth) == 1.0

    def test_mixed(self):
        truth = np.asarray([0, 0, 1, 1])
        pred = np.asarray([0, 0, 0, 0])
        assert purity(truth, pred) == 0.5


class TestARI:
    def test_perfect_is_one(self, rng):
        truth = rng.integers(0, 3, 30)
        assert adjusted_rand_index(truth, truth) == pytest.approx(1.0)

    def test_random_near_zero(self, rng):
        truth = rng.integers(0, 4, 2000)
        pred = rng.integers(0, 4, 2000)
        assert abs(adjusted_rand_index(truth, pred)) < 0.05

    def test_label_permutation_invariant(self, rng):
        truth = rng.integers(0, 3, 50)
        pred = rng.integers(0, 3, 50)
        shifted = (pred + 1) % 3
        assert np.isclose(
            adjusted_rand_index(truth, pred), adjusted_rand_index(truth, shifted)
        )


class TestNMI:
    def test_perfect_is_one(self, rng):
        truth = rng.integers(0, 3, 40)
        # Guard: degenerate single-class draws give NMI 1 trivially.
        if len(set(truth.tolist())) > 1:
            assert normalized_mutual_information(truth, truth) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        truth = rng.integers(0, 4, 3000)
        pred = rng.integers(0, 4, 3000)
        assert normalized_mutual_information(truth, pred) < 0.02

    def test_symmetric(self, rng):
        a = rng.integers(0, 3, 60)
        b = rng.integers(0, 4, 60)
        assert np.isclose(
            normalized_mutual_information(a, b),
            normalized_mutual_information(b, a),
        )


class TestSilhouette:
    def test_separated_blobs_high(self, rng):
        x = np.vstack(
            [rng.normal(0, 0.1, (20, 2)), rng.normal(10, 0.1, (20, 2))]
        )
        labels = np.repeat([0, 1], 20)
        assert silhouette_score(x, labels) > 0.9

    def test_random_labels_low(self, rng):
        x = rng.random((60, 2))
        labels = rng.integers(0, 2, 60)
        assert silhouette_score(x, labels) < 0.3

    def test_matched_labels_beat_swapped(self, rng):
        x = np.vstack(
            [rng.normal(0, 0.5, (15, 2)), rng.normal(5, 0.5, (15, 2))]
        )
        good = np.repeat([0, 1], 15)
        bad = good.copy()
        bad[:8] = 1  # corrupt
        assert silhouette_score(x, good) > silhouette_score(x, bad)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            silhouette_score(rng.random((5, 2)), np.zeros(5))  # 1 cluster
        with pytest.raises(ValueError):
            silhouette_score(rng.random((5, 2)), np.zeros(4))
