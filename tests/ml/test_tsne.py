"""Tests for exact t-SNE."""

import numpy as np
import pytest

from repro.ml.tsne import TSNE


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            TSNE(n_components=0)
        with pytest.raises(ValueError):
            TSNE(perplexity=1.0)
        with pytest.raises(ValueError):
            TSNE(n_iter=0)

    def test_perplexity_vs_samples(self, rng):
        with pytest.raises(ValueError):
            TSNE(perplexity=30).fit_transform(rng.random((10, 3)))

    def test_1d_input_rejected(self, rng):
        with pytest.raises(ValueError):
            TSNE(perplexity=2).fit_transform(rng.random(10))


class TestEmbedding:
    def test_output_shape(self, rng):
        x = rng.random((40, 8))
        y = TSNE(2, perplexity=10, n_iter=50, seed=0).fit_transform(x)
        assert y.shape == (40, 2)
        assert np.all(np.isfinite(y))

    def test_three_components(self, rng):
        x = rng.random((30, 5))
        y = TSNE(3, perplexity=8, n_iter=50, seed=0).fit_transform(x)
        assert y.shape == (30, 3)

    def test_centered_output(self, rng):
        x = rng.random((30, 5))
        y = TSNE(2, perplexity=8, n_iter=50, seed=0).fit_transform(x)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-9)

    def test_kl_divergence_recorded(self, rng):
        x = rng.random((25, 4))
        t = TSNE(2, perplexity=5, n_iter=60, seed=0)
        t.fit_transform(x)
        assert t.kl_divergence_ is not None
        assert t.kl_divergence_ >= 0

    def test_separates_two_blobs(self, rng):
        a = rng.normal(0, 0.3, (25, 6))
        b = rng.normal(6, 0.3, (25, 6))
        x = np.vstack([a, b])
        y = TSNE(2, perplexity=8, n_iter=250, seed=0).fit_transform(x)
        ya, yb = y[:25], y[25:]
        intra = max(
            np.linalg.norm(ya - ya.mean(0), axis=1).mean(),
            np.linalg.norm(yb - yb.mean(0), axis=1).mean(),
        )
        inter = np.linalg.norm(ya.mean(0) - yb.mean(0))
        assert inter > 2 * intra

    def test_deterministic_given_seed(self, rng):
        x = rng.random((20, 3))
        a = TSNE(2, perplexity=5, n_iter=30, seed=7).fit_transform(x)
        b = TSNE(2, perplexity=5, n_iter=30, seed=7).fit_transform(x)
        np.testing.assert_array_equal(a, b)

    def test_more_iters_lower_kl(self, rng):
        x = np.vstack(
            [rng.normal(0, 0.3, (20, 4)), rng.normal(5, 0.3, (20, 4))]
        )
        short = TSNE(2, perplexity=6, n_iter=60, seed=0)
        long = TSNE(2, perplexity=6, n_iter=400, seed=0)
        short.fit_transform(x)
        long.fit_transform(x)
        assert long.kl_divergence_ <= short.kl_divergence_ + 0.05
