"""Tests for k-fold cross validation."""

import numpy as np
import pytest

from repro.ml.cross_validation import KFold, cross_validate_knn


class TestKFold:
    def test_folds_partition_everything(self):
        kf = KFold(5, seed=0)
        seen = []
        for train, test in kf.split(23):
            seen.extend(test.tolist())
            assert set(train.tolist()) | set(test.tolist()) == set(range(23))
            assert not set(train.tolist()) & set(test.tolist())
        assert sorted(seen) == list(range(23))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(10, seed=1).split(105)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 105

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(10).split(5))

    def test_n_splits_validated(self):
        with pytest.raises(ValueError):
            KFold(1)

    def test_deterministic(self):
        a = [t.tolist() for _, t in KFold(4, seed=9).split(20)]
        b = [t.tolist() for _, t in KFold(4, seed=9).split(20)]
        assert a == b

    def test_shuffled(self):
        a = [t.tolist() for _, t in KFold(4, seed=1).split(20)]
        b = [t.tolist() for _, t in KFold(4, seed=2).split(20)]
        assert a != b


class TestCrossValidateKNN:
    def test_separable_data_high_accuracy(self, rng):
        x = np.vstack(
            [rng.normal(0, 0.2, (40, 3)), rng.normal(5, 0.2, (40, 3))]
        )
        y = np.repeat([0, 1], 40)
        acc = cross_validate_knn(x, y, k=3, metric="euclidean", n_splits=5, seed=0)
        assert acc > 0.95

    def test_random_labels_near_chance(self, rng):
        x = rng.random((100, 3))
        y = rng.integers(0, 2, 100)
        acc = cross_validate_knn(x, y, k=3, n_splits=5, seed=0)
        assert acc < 0.75

    def test_repeats_average(self, rng):
        x = rng.random((50, 2))
        y = rng.integers(0, 2, 50)
        acc = cross_validate_knn(x, y, k=1, n_splits=5, repeats=3, seed=0)
        assert 0.0 <= acc <= 1.0

    def test_repeats_validated(self, rng):
        with pytest.raises(ValueError):
            cross_validate_knn(rng.random((20, 2)), np.zeros(20), repeats=0)

    def test_deterministic(self, rng):
        x = rng.random((40, 2))
        y = rng.integers(0, 2, 40)
        a = cross_validate_knn(x, y, seed=4, n_splits=4)
        b = cross_validate_knn(x, y, seed=4, n_splits=4)
        assert a == b
