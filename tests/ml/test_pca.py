"""Tests for PCA."""

import numpy as np
import pytest

from repro.ml.pca import PCA


class TestFit:
    def test_components_orthonormal(self, rng):
        x = rng.random((50, 6))
        pca = PCA(3).fit(x)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_explained_variance_descending(self, rng):
        x = rng.random((50, 6))
        pca = PCA(4).fit(x)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-12)

    def test_variance_ratio_sums_below_one(self, rng):
        x = rng.random((40, 5))
        pca = PCA(2).fit(x)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-12

    def test_full_rank_ratio_sums_to_one(self, rng):
        x = rng.random((40, 3))
        pca = PCA(3).fit(x)
        assert np.isclose(pca.explained_variance_ratio_.sum(), 1.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(2).fit(rng.random(5))
        with pytest.raises(ValueError):
            PCA(2).fit(rng.random((1, 5)))
        with pytest.raises(ValueError):
            PCA(6).fit(rng.random((10, 3)))  # n_components > d

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((3, 3)))


class TestProjection:
    def test_first_component_finds_dominant_axis(self, rng):
        # Variance 100 along a known direction, 1 elsewhere.
        direction = np.asarray([3.0, 4.0]) / 5.0
        t = rng.normal(scale=10, size=200)
        noise = rng.normal(scale=1.0, size=(200, 2))
        x = t[:, None] * direction[None, :] + noise
        pca = PCA(1).fit(x)
        alignment = abs(pca.components_[0] @ direction)
        assert alignment > 0.99

    def test_transform_centers_data(self, rng):
        x = rng.random((30, 4)) + 100.0
        z = PCA(2).fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)

    def test_projection_preserves_pairwise_structure(self, rng):
        # Data intrinsically 2-D embedded in 5-D: projection is lossless.
        basis = np.linalg.qr(rng.normal(size=(5, 2)))[0]
        coords = rng.normal(size=(40, 2)) * [5, 2]
        x = coords @ basis.T
        z = PCA(2).fit_transform(x)
        d_orig = np.linalg.norm(x[:, None] - x[None, :], axis=2)
        d_proj = np.linalg.norm(z[:, None] - z[None, :], axis=2)
        np.testing.assert_allclose(d_proj, d_orig, atol=1e-8)

    def test_inverse_transform_roundtrip_full_rank(self, rng):
        x = rng.random((20, 3))
        pca = PCA(3).fit(x)
        back = pca.inverse_transform(pca.transform(x))
        np.testing.assert_allclose(back, x, atol=1e-9)

    def test_inverse_transform_lossy_when_truncated(self, rng):
        x = rng.random((20, 5))
        pca = PCA(2).fit(x)
        back = pca.inverse_transform(pca.transform(x))
        assert back.shape == x.shape
        # Reconstruction error bounded by discarded variance.
        err = ((back - x) ** 2).sum() / 19
        discarded = PCA(5).fit(x).explained_variance_[2:].sum()
        assert err <= discarded + 1e-9

    def test_deterministic_sign(self, rng):
        x = rng.random((30, 4))
        a = PCA(2).fit(x).components_
        b = PCA(2).fit(x).components_
        np.testing.assert_array_equal(a, b)

    def test_matches_covariance_eigenvalues(self, rng):
        x = rng.random((100, 4))
        pca = PCA(4).fit(x)
        cov = np.cov(x.T)
        eig = np.sort(np.linalg.eigvalsh(cov))[::-1]
        np.testing.assert_allclose(pca.explained_variance_, eig, atol=1e-9)
