"""Tests for the k-NN graph builder."""

import numpy as np
import pytest

from repro.ml.neighbors import cosine_similarity_matrix, knn_graph


def blobs(rng):
    return np.vstack(
        [rng.normal(0, 0.2, (15, 4)), rng.normal(6, 0.2, (15, 4))]
    )


class TestCosineSimilarityMatrix:
    def test_diagonal_ones(self, rng):
        x = rng.normal(size=(8, 3))
        sims = cosine_similarity_matrix(x)
        np.testing.assert_allclose(np.diag(sims), 1.0, atol=1e-12)

    def test_symmetric_and_bounded(self, rng):
        sims = cosine_similarity_matrix(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(sims, sims.T, atol=1e-12)
        assert sims.max() <= 1.0 + 1e-9
        assert sims.min() >= -1.0 - 1e-9

    def test_zero_rows_handled(self):
        x = np.zeros((3, 2))
        x[0, 0] = 1.0
        sims = cosine_similarity_matrix(x)
        assert np.all(np.isfinite(sims))

    def test_1d_rejected(self, rng):
        with pytest.raises(ValueError):
            cosine_similarity_matrix(rng.normal(size=5))


class TestKnnGraph:
    def test_basic_structure(self, rng):
        g = knn_graph(blobs(rng), k=3)
        assert g.n == 30
        assert not g.directed
        # Union graph: every vertex has degree >= k.
        assert g.out_degrees().min() >= 3

    def test_blobs_stay_separate(self, rng):
        # Euclidean: the first blob sits at the origin, where cosine
        # directions are pure noise.
        g = knn_graph(blobs(rng), k=3, metric="euclidean")
        e = g.edge_list
        cross = ((e.src < 15) != (e.dst < 15)).sum()
        assert cross == 0  # no edges between far-apart blobs

    def test_mutual_is_subgraph_of_union(self, rng):
        x = rng.normal(size=(20, 3))
        union = knn_graph(x, k=4, mutual=False)
        mutual = knn_graph(x, k=4, mutual=True)
        assert mutual.num_edges <= union.num_edges
        union_pairs = {
            (int(min(u, v)), int(max(u, v)))
            for u, v in zip(union.edge_list.src, union.edge_list.dst)
        }
        for u, v in zip(mutual.edge_list.src, mutual.edge_list.dst):
            assert (int(min(u, v)), int(max(u, v))) in union_pairs

    def test_weights_positive(self, rng):
        for metric in ("cosine", "euclidean"):
            g = knn_graph(rng.normal(size=(15, 3)), k=3, metric=metric)
            assert g.weighted
            assert np.all(g.edge_list.weights > 0)

    def test_unweighted_option(self, rng):
        g = knn_graph(rng.normal(size=(10, 3)), k=2, weighted=False)
        assert not g.weighted

    def test_no_self_loops_no_duplicates(self, rng):
        g = knn_graph(rng.normal(size=(25, 4)), k=5)
        e = g.edge_list
        assert np.all(e.src != e.dst)
        pairs = list(zip(np.minimum(e.src, e.dst), np.maximum(e.src, e.dst)))
        assert len(pairs) == len(set(map(tuple, pairs)))

    def test_validation(self, rng):
        x = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            knn_graph(x, k=0)
        with pytest.raises(ValueError):
            knn_graph(x, k=5)
        with pytest.raises(ValueError):
            knn_graph(x, k=2, metric="hamming")
        with pytest.raises(ValueError):
            knn_graph(rng.normal(size=6), k=2)

    def test_hybrid_detection_pipeline(self, rng):
        """Embed -> knn graph -> Louvain recovers planted communities."""
        from repro import V2V, V2VConfig
        from repro.community import louvain_communities
        from repro.graph.generators import planted_partition
        from repro.ml.metrics import adjusted_rand_index

        g = planted_partition(n=90, groups=3, alpha=0.6, inter_edges=12, seed=0)
        model = V2V(
            V2VConfig(dim=16, walks_per_vertex=6, walk_length=20, epochs=5, seed=0)
        ).fit(g)
        sim_graph = knn_graph(model.vectors, k=10)
        labels = louvain_communities(sim_graph, seed=0)
        truth = g.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) > 0.8
