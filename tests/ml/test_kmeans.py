"""Tests for k-means clustering."""

import numpy as np
import pytest

from repro.ml.kmeans import KMeans, _kmeanspp_init, _squared_distances
from repro.ml.metrics import adjusted_rand_index


def blobs(rng, centers, n_per=30, scale=0.1):
    pts, labels = [], []
    for i, c in enumerate(centers):
        pts.append(np.asarray(c) + rng.normal(scale=scale, size=(n_per, len(c))))
        labels += [i] * n_per
    return np.vstack(pts), np.asarray(labels)


class TestSquaredDistances:
    def test_matches_naive(self, rng):
        x = rng.random((10, 3))
        c = rng.random((4, 3))
        d2 = _squared_distances(x, c)
        naive = ((x[:, None, :] - c[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, naive, atol=1e-10)

    def test_non_negative(self, rng):
        x = rng.random((50, 2)) * 1000
        assert np.all(_squared_distances(x, x[:3]) >= 0)


class TestKMeansPP:
    def test_centers_are_data_points(self, rng):
        x = rng.random((20, 2))
        centers = _kmeanspp_init(x, 5, rng)
        for c in centers:
            assert np.any(np.all(np.isclose(x, c), axis=1))

    def test_duplicate_points_handled(self, rng):
        x = np.zeros((10, 2))
        centers = _kmeanspp_init(x, 3, rng)
        assert centers.shape == (3, 2)

    def test_spreads_centers(self, rng):
        x, _ = blobs(rng, [(0, 0), (10, 10), (20, 0)], n_per=20)
        centers = _kmeanspp_init(x, 3, rng)
        d = ((centers[:, None] - centers[None, :]) ** 2).sum(-1)
        iu = np.triu_indices(3, 1)
        assert d[iu].min() > 25  # no two seeds in the same blob


class TestKMeans:
    def test_recovers_blobs(self, rng):
        x, truth = blobs(rng, [(0, 0), (5, 5), (-5, 5)])
        result = KMeans(3, n_init=5, seed=0).fit(x)
        assert adjusted_rand_index(truth, result.labels) == 1.0

    def test_inertia_is_wcss(self, rng):
        x, _ = blobs(rng, [(0, 0), (5, 5)])
        result = KMeans(2, n_init=3, seed=0).fit(x)
        wcss = sum(
            ((x[result.labels == j] - result.centers[j]) ** 2).sum()
            for j in range(2)
        )
        assert np.isclose(result.inertia, wcss)

    def test_more_restarts_never_worse(self, rng):
        x = rng.random((100, 4))
        one = KMeans(8, n_init=1, seed=0).fit(x).inertia
        many = KMeans(8, n_init=20, seed=0).fit(x).inertia
        assert many <= one + 1e-9

    def test_k_one(self, rng):
        x = rng.random((10, 3))
        result = KMeans(1, n_init=1, seed=0).fit(x)
        assert np.all(result.labels == 0)
        np.testing.assert_allclose(result.centers[0], x.mean(axis=0))

    def test_k_equals_n(self, rng):
        x = rng.random((5, 2))
        result = KMeans(5, n_init=2, seed=0).fit(x)
        assert sorted(result.labels.tolist()) == [0, 1, 2, 3, 4]
        assert result.inertia < 1e-12

    def test_k_larger_than_n_rejected(self, rng):
        with pytest.raises(ValueError):
            KMeans(10).fit(rng.random((5, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2, n_init=0)
        with pytest.raises(ValueError):
            KMeans(2, max_iter=0)
        with pytest.raises(ValueError):
            KMeans(2, init="bogus")
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(5))

    def test_random_init_works(self, rng):
        x, truth = blobs(rng, [(0, 0), (8, 8)])
        result = KMeans(2, n_init=5, init="random", seed=0).fit(x)
        assert adjusted_rand_index(truth, result.labels) == 1.0

    def test_deterministic_given_seed(self, rng):
        x = rng.random((60, 3))
        a = KMeans(4, n_init=3, seed=5).fit(x)
        b = KMeans(4, n_init=3, seed=5).fit(x)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_fit_predict(self, rng):
        x, _ = blobs(rng, [(0, 0), (9, 9)])
        labels = KMeans(2, n_init=2, seed=0).fit_predict(x)
        assert labels.shape == (60,)

    def test_empty_cluster_reseeded(self):
        # Adversarial: duplicate points force empty clusters in Lloyd.
        x = np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 10])
        result = KMeans(3, n_init=1, seed=1).fit(x)
        assert result.labels.shape == (10,)
        # All 3 clusters exist or degenerate gracefully (labels valid).
        assert result.labels.max() < 3

    def test_labels_match_nearest_center(self, rng):
        x = rng.random((80, 3))
        result = KMeans(5, n_init=2, seed=0).fit(x)
        d2 = _squared_distances(x, result.centers)
        np.testing.assert_array_equal(result.labels, d2.argmin(axis=1))
