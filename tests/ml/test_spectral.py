"""Tests for spectral embedding / clustering."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import complete_graph, planted_partition
from repro.ml.metrics import adjusted_rand_index
from repro.ml.spectral import spectral_communities, spectral_embedding


class TestSpectralEmbedding:
    def test_shape_and_unit_rows(self, two_cliques):
        emb = spectral_embedding(two_cliques, dim=3, seed=0)
        assert emb.shape == (8, 3)
        np.testing.assert_allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-9)

    def test_two_cliques_separate_on_first_axis(self, two_cliques):
        emb = spectral_embedding(two_cliques, dim=1, seed=0)
        signs = np.sign(emb[:, 0])
        # The Fiedler vector splits the two cliques.
        assert len(set(signs[:4])) == 1
        assert len(set(signs[4:])) == 1
        assert signs[0] != signs[4]

    def test_validation(self, two_cliques, directed_chain):
        with pytest.raises(ValueError):
            spectral_embedding(directed_chain, dim=2)
        with pytest.raises(ValueError):
            spectral_embedding(two_cliques, dim=0)
        with pytest.raises(ValueError):
            spectral_embedding(two_cliques, dim=8)  # dim + 1 >= n

    def test_isolated_vertices_handled(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2)])
        emb = spectral_embedding(g, dim=2, seed=0)
        assert np.all(np.isfinite(emb))

    def test_deterministic(self, two_cliques):
        a = spectral_embedding(two_cliques, dim=2, seed=1)
        b = spectral_embedding(two_cliques, dim=2, seed=1)
        np.testing.assert_allclose(np.abs(a), np.abs(b), atol=1e-8)


class TestSpectralCommunities:
    def test_two_cliques(self, two_cliques):
        labels = spectral_communities(two_cliques, 2, seed=0)
        truth = two_cliques.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_planted_partition(self, small_benchmark):
        labels = spectral_communities(small_benchmark, 4, seed=0)
        truth = small_benchmark.vertex_labels("community")
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_weighted_graph(self):
        g = Graph(6, [(0, 1, 10.0), (1, 2, 10.0), (0, 2, 10.0),
                      (3, 4, 10.0), (4, 5, 10.0), (3, 5, 10.0),
                      (2, 3, 0.1)])
        labels = spectral_communities(g, 2, seed=0)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_k_validation(self, two_cliques):
        with pytest.raises(ValueError):
            spectral_communities(two_cliques, 1)

    def test_complete_graph_no_crash(self):
        labels = spectral_communities(complete_graph(10), 2, seed=0)
        assert labels.shape == (10,)
