"""Tests for the k-NN classifier."""

import numpy as np
import pytest

from repro.ml.knn import KNNClassifier


class TestFitValidation:
    def test_shape_checks(self):
        clf = KNNClassifier()
        with pytest.raises(ValueError):
            clf.fit(np.zeros(5), np.zeros(5))  # 1-D x
        with pytest.raises(ValueError):
            clf.fit(np.zeros((5, 2)), np.zeros(4))  # label mismatch
        with pytest.raises(ValueError):
            clf.fit(np.zeros((0, 2)), np.zeros(0))  # empty

    def test_param_validation(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)
        with pytest.raises(ValueError):
            KNNClassifier(metric="manhattan")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNNClassifier().predict(np.zeros((1, 2)))

    def test_dim_mismatch_on_predict(self):
        clf = KNNClassifier(k=1).fit(np.zeros((3, 2)), np.asarray([0, 1, 0]))
        with pytest.raises(ValueError):
            clf.predict(np.zeros((1, 3)))


class TestNearestNeighbor:
    def test_k1_exact_match(self):
        x = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        y = np.asarray(["a", "b"])
        clf = KNNClassifier(k=1).fit(x, y)
        assert clf.predict(np.asarray([[0.0, 0.9]]))[0] == "a"
        assert clf.predict(np.asarray([[0.9, 0.1]]))[0] == "b"

    def test_cosine_ignores_magnitude(self):
        x = np.asarray([[1.0, 0.0], [0.0, 1.0]])
        y = np.asarray([0, 1])
        clf = KNNClassifier(k=1, metric="cosine").fit(x, y)
        # A huge vector along axis 0 is still class 0 by cosine.
        assert clf.predict(np.asarray([[1000.0, 1.0]]))[0] == 0

    def test_euclidean_uses_magnitude(self):
        x = np.asarray([[1.0, 0.0], [10.0, 0.0]])
        y = np.asarray([0, 1])
        clf = KNNClassifier(k=1, metric="euclidean").fit(x, y)
        assert clf.predict(np.asarray([[8.0, 0.0]]))[0] == 1


class TestMajorityVote:
    def test_majority_wins(self):
        x = np.asarray([[1, 0], [0.9, 0.1], [0, 1]], dtype=float)
        y = np.asarray([0, 0, 1])
        clf = KNNClassifier(k=3).fit(x, y)
        assert clf.predict(np.asarray([[1.0, 0.05]]))[0] == 0

    def test_tie_breaks_to_nearest(self):
        x = np.asarray([[1, 0], [0, 1]], dtype=float)
        y = np.asarray([0, 1])
        clf = KNNClassifier(k=2).fit(x, y)
        # 1 vote each; class of the closer neighbor must win.
        assert clf.predict(np.asarray([[0.9, 0.1]]))[0] == 0
        assert clf.predict(np.asarray([[0.1, 0.9]]))[0] == 1

    def test_k_clamped_to_train_size(self):
        x = np.asarray([[1, 0], [0, 1]], dtype=float)
        y = np.asarray([0, 1])
        clf = KNNClassifier(k=50).fit(x, y)
        assert clf.predict(np.asarray([[1.0, 0.0]])).shape == (1,)

    def test_string_labels(self):
        x = np.eye(3)
        y = np.asarray(["FR", "DE", "US"])
        clf = KNNClassifier(k=1).fit(x, y)
        assert clf.predict(np.eye(3)).tolist() == ["FR", "DE", "US"]


class TestScore:
    def test_perfect_on_train_k1(self, rng):
        x = rng.random((30, 4))
        y = rng.integers(0, 3, 30)
        clf = KNNClassifier(k=1).fit(x, y)
        assert clf.score(x, y) == 1.0

    def test_clustered_generalization(self, rng):
        centers = np.asarray([[0, 0], [10, 10], [0, 10]], dtype=float)
        train = np.vstack(
            [c + rng.normal(scale=0.5, size=(20, 2)) for c in centers]
        )
        labels = np.repeat([0, 1, 2], 20)
        test = np.vstack(
            [c + rng.normal(scale=0.5, size=(10, 2)) for c in centers]
        )
        test_labels = np.repeat([0, 1, 2], 10)
        clf = KNNClassifier(k=3, metric="euclidean").fit(train, labels)
        assert clf.score(test, test_labels) > 0.95

    def test_zero_vector_queries_handled(self):
        x = np.asarray([[1.0, 0.0], [0.0, 1.0]])
        clf = KNNClassifier(k=1).fit(x, np.asarray([0, 1]))
        out = clf.predict(np.zeros((1, 2)))
        assert out[0] in (0, 1)  # no NaN crash
