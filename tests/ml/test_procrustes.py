"""Tests for orthogonal Procrustes alignment."""

import numpy as np
import pytest

from repro.ml.procrustes import aligned_distance, procrustes_align


def random_rotation(rng, d):
    q, r = np.linalg.qr(rng.normal(size=(d, d)))
    return q * np.sign(np.diag(r))


class TestProcrustesAlign:
    def test_recovers_rotation_exactly(self, rng):
        x = rng.normal(size=(30, 5))
        r = random_rotation(rng, 5)
        result = procrustes_align(x, x @ r)
        np.testing.assert_allclose(result.rotation, r, atol=1e-9)
        assert result.residual < 1e-9

    def test_rotation_is_orthogonal(self, rng):
        a = rng.normal(size=(20, 4))
        b = rng.normal(size=(20, 4))
        result = procrustes_align(a, b)
        np.testing.assert_allclose(
            result.rotation @ result.rotation.T, np.eye(4), atol=1e-9
        )

    def test_aligned_equals_source_times_rotation(self, rng):
        a = rng.normal(size=(15, 3))
        b = rng.normal(size=(15, 3))
        result = procrustes_align(a, b)
        np.testing.assert_allclose(result.aligned, a @ result.rotation)

    def test_alignment_never_hurts(self, rng):
        a = rng.normal(size=(25, 6))
        b = rng.normal(size=(25, 6))
        result = procrustes_align(a, b)
        assert result.residual <= np.linalg.norm(a - b) + 1e-9

    def test_scaling_option(self, rng):
        x = rng.normal(size=(20, 4))
        r = random_rotation(rng, 4)
        result = procrustes_align(x, 2.5 * (x @ r), allow_scaling=True)
        assert result.residual < 1e-9
        # Rotation matrix carries the scale: RᵀR = s² I.
        gram = result.rotation.T @ result.rotation
        np.testing.assert_allclose(gram, 6.25 * np.eye(4), atol=1e-9)

    def test_reflection_recovered(self, rng):
        x = rng.normal(size=(20, 3))
        flip = np.diag([1.0, -1.0, 1.0])
        result = procrustes_align(x, x @ flip)
        assert result.residual < 1e-9

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            procrustes_align(rng.normal(size=(5, 2)), rng.normal(size=(6, 2)))
        with pytest.raises(ValueError):
            procrustes_align(rng.normal(size=5), rng.normal(size=5))

    def test_zero_source_scaling_rejected(self):
        with pytest.raises(ValueError):
            procrustes_align(np.zeros((4, 2)), np.ones((4, 2)), allow_scaling=True)


class TestAlignedDistance:
    def test_zero_for_rotated_copy(self, rng):
        x = rng.normal(size=(20, 4))
        r = random_rotation(rng, 4)
        assert aligned_distance(x, x @ r) < 1e-9

    def test_positive_for_different(self, rng):
        a = rng.normal(size=(20, 4))
        b = rng.normal(size=(20, 4))
        assert aligned_distance(a, b) > 0.1

    def test_zero_target(self):
        assert aligned_distance(np.zeros((3, 2)), np.zeros((3, 2))) == 0.0
        assert aligned_distance(np.ones((3, 2)), np.zeros((3, 2))) == float("inf")

    def test_two_trainings_align_closely(self):
        """Two V2V runs of the same graph differ mainly by rotation:
        aligned distance is much smaller than the unaligned distance."""
        from repro import V2V, V2VConfig
        from repro.graph.generators import planted_partition

        g = planted_partition(n=60, groups=3, alpha=0.7, inter_edges=8, seed=0)
        cfg = dict(dim=12, walks_per_vertex=6, walk_length=20, epochs=6,
                   early_stop=False)
        a = V2V(V2VConfig(seed=1, **cfg)).fit(g).vectors
        b = V2V(V2VConfig(seed=2, **cfg)).fit(g).vectors
        raw = np.linalg.norm(a - b) / np.linalg.norm(b)
        aligned = aligned_distance(a, b)
        assert aligned < raw
