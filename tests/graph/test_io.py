"""Round-trip tests for graph I/O."""

import numpy as np
import pytest

from repro.graph.core import EdgeList, Graph
from repro.graph.generators import planted_partition
from repro.graph.io import load_graph, read_edge_list, save_graph, write_edge_list


class TestEdgeListText:
    def test_roundtrip_plain(self, tmp_path, triangle):
        p = tmp_path / "g.txt"
        write_edge_list(triangle, p)
        g = read_edge_list(p)
        assert g.n == 3
        assert g.num_edges == 3
        assert not g.directed

    def test_roundtrip_directed(self, tmp_path, directed_chain):
        p = tmp_path / "g.txt"
        write_edge_list(directed_chain, p)
        g = read_edge_list(p)
        assert g.directed
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_roundtrip_weighted(self, tmp_path, weighted_star):
        p = tmp_path / "g.txt"
        write_edge_list(weighted_star, p)
        g = read_edge_list(p)
        assert g.weighted
        np.testing.assert_allclose(
            np.sort(g.edge_list.weights), [1.0, 2.0, 3.0]
        )

    def test_roundtrip_temporal(self, tmp_path, temporal_line):
        p = tmp_path / "g.txt"
        write_edge_list(temporal_line, p)
        g = read_edge_list(p)
        assert g.temporal
        np.testing.assert_allclose(np.sort(g.edge_list.times), [10.0, 20.0, 30.0])

    def test_header_n_preserves_isolated(self, tmp_path):
        g0 = Graph(10, [(0, 1)])
        p = tmp_path / "g.txt"
        write_edge_list(g0, p)
        assert read_edge_list(p).n == 10

    def test_explicit_overrides(self, tmp_path, triangle):
        p = tmp_path / "g.txt"
        write_edge_list(triangle, p)
        g = read_edge_list(p, n=7)
        assert g.n == 7

    def test_no_header_defaults(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 4\n")
        g = read_edge_list(p)
        assert g.n == 5
        assert not g.directed

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# a comment\n\n0 1\n")
        assert read_edge_list(p).num_edges == 1

    def test_inconsistent_columns_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 2 3.0\n")
        with pytest.raises(ValueError):
            read_edge_list(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("")
        assert read_edge_list(p).n == 0


class TestErrorPolicies:
    CORRUPT = (
        "# n=5 directed=0\n"
        "0 1\n"
        "banana soup\n"  # non-numeric
        "1 2\n"
        "3 99\n"  # exceeds declared n
        "2 -4\n"  # negative id
        "1 2 3\n"  # wrong column count
        "4 4.5\n"  # fractional id
        "3 4\n"
    )

    def test_strict_raises_with_line_number(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text(self.CORRUPT)
        with pytest.raises(ValueError, match=":3:"):
            read_edge_list(p)

    def test_skip_drops_bad_lines(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text(self.CORRUPT)
        g = read_edge_list(p, errors="skip")
        assert g.n == 5
        assert g.num_edges == 3  # the three well-formed edges survive
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(3, 4)

    def test_collect_records_line_numbers_and_reasons(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text(self.CORRUPT)
        bad: list[tuple[int, str, str]] = []
        g = read_edge_list(p, errors="collect", collector=bad)
        assert g.num_edges == 3
        assert [lineno for lineno, _, _ in bad] == [3, 5, 6, 7, 8]
        assert "non-numeric" in bad[0][2]

    def test_collect_without_collector_warns(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\nnope\n")
        with pytest.warns(UserWarning, match="dropped 1 malformed"):
            g = read_edge_list(p, errors="collect")
        assert g.num_edges == 1

    def test_unknown_policy_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        with pytest.raises(ValueError, match="errors must be one of"):
            read_edge_list(p, errors="ignore")

    def test_skip_on_clean_file_changes_nothing(self, tmp_path, triangle):
        p = tmp_path / "g.txt"
        write_edge_list(triangle, p)
        strict = read_edge_list(p)
        skipped = read_edge_list(p, errors="skip")
        assert strict.n == skipped.n
        assert strict.num_edges == skipped.num_edges

    def test_all_lines_bad_yields_empty_graph(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("x y\nz\n")
        g = read_edge_list(p, errors="skip")
        assert g.n == 0 and g.num_edges == 0


class TestBinary:
    def test_full_roundtrip(self, tmp_path):
        g0 = planted_partition(n=60, groups=3, alpha=0.5, inter_edges=6, seed=0)
        g0.set_vertex_labels("name", np.asarray([f"v{i}" for i in range(60)]))
        p = tmp_path / "g.npz"
        save_graph(g0, p)
        g = load_graph(p)
        assert g.n == g0.n
        assert g.num_edges == g0.num_edges
        np.testing.assert_array_equal(
            g.vertex_labels("community"), g0.vertex_labels("community")
        )
        assert g.vertex_labels("name")[5] == "v5"

    def test_weighted_temporal_roundtrip(self, tmp_path, temporal_line):
        p = tmp_path / "g.npz"
        save_graph(temporal_line, p)
        g = load_graph(p)
        assert g.directed and g.temporal and g.weighted
        np.testing.assert_allclose(g.edge_list.times, temporal_line.edge_list.times)

    def test_vertex_weights_roundtrip(self, tmp_path):
        g0 = Graph(3, [(0, 1)], vertex_weights=[1.0, 2.0, 3.0])
        p = tmp_path / "g.npz"
        save_graph(g0, p)
        np.testing.assert_allclose(load_graph(p).vertex_weights, [1.0, 2.0, 3.0])
