"""Round-trip tests for graph I/O."""

import numpy as np
import pytest

from repro.graph.core import EdgeList, Graph
from repro.graph.generators import planted_partition
from repro.graph.io import load_graph, read_edge_list, save_graph, write_edge_list


class TestEdgeListText:
    def test_roundtrip_plain(self, tmp_path, triangle):
        p = tmp_path / "g.txt"
        write_edge_list(triangle, p)
        g = read_edge_list(p)
        assert g.n == 3
        assert g.num_edges == 3
        assert not g.directed

    def test_roundtrip_directed(self, tmp_path, directed_chain):
        p = tmp_path / "g.txt"
        write_edge_list(directed_chain, p)
        g = read_edge_list(p)
        assert g.directed
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_roundtrip_weighted(self, tmp_path, weighted_star):
        p = tmp_path / "g.txt"
        write_edge_list(weighted_star, p)
        g = read_edge_list(p)
        assert g.weighted
        np.testing.assert_allclose(
            np.sort(g.edge_list.weights), [1.0, 2.0, 3.0]
        )

    def test_roundtrip_temporal(self, tmp_path, temporal_line):
        p = tmp_path / "g.txt"
        write_edge_list(temporal_line, p)
        g = read_edge_list(p)
        assert g.temporal
        np.testing.assert_allclose(np.sort(g.edge_list.times), [10.0, 20.0, 30.0])

    def test_header_n_preserves_isolated(self, tmp_path):
        g0 = Graph(10, [(0, 1)])
        p = tmp_path / "g.txt"
        write_edge_list(g0, p)
        assert read_edge_list(p).n == 10

    def test_explicit_overrides(self, tmp_path, triangle):
        p = tmp_path / "g.txt"
        write_edge_list(triangle, p)
        g = read_edge_list(p, n=7)
        assert g.n == 7

    def test_no_header_defaults(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 4\n")
        g = read_edge_list(p)
        assert g.n == 5
        assert not g.directed

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# a comment\n\n0 1\n")
        assert read_edge_list(p).num_edges == 1

    def test_inconsistent_columns_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 2 3.0\n")
        with pytest.raises(ValueError):
            read_edge_list(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("")
        assert read_edge_list(p).n == 0


class TestBinary:
    def test_full_roundtrip(self, tmp_path):
        g0 = planted_partition(n=60, groups=3, alpha=0.5, inter_edges=6, seed=0)
        g0.set_vertex_labels("name", np.asarray([f"v{i}" for i in range(60)]))
        p = tmp_path / "g.npz"
        save_graph(g0, p)
        g = load_graph(p)
        assert g.n == g0.n
        assert g.num_edges == g0.num_edges
        np.testing.assert_array_equal(
            g.vertex_labels("community"), g0.vertex_labels("community")
        )
        assert g.vertex_labels("name")[5] == "v5"

    def test_weighted_temporal_roundtrip(self, tmp_path, temporal_line):
        p = tmp_path / "g.npz"
        save_graph(temporal_line, p)
        g = load_graph(p)
        assert g.directed and g.temporal and g.weighted
        np.testing.assert_allclose(g.edge_list.times, temporal_line.edge_list.times)

    def test_vertex_weights_roundtrip(self, tmp_path):
        g0 = Graph(3, [(0, 1)], vertex_weights=[1.0, 2.0, 3.0])
        p = tmp_path / "g.npz"
        save_graph(g0, p)
        np.testing.assert_allclose(load_graph(p).vertex_weights, [1.0, 2.0, 3.0])
