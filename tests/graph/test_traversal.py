"""Tests for BFS/DFS, components, shortest paths, edge betweenness."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import cycle_graph, path_graph, complete_graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    connected_components,
    dfs_order,
    edge_betweenness,
    is_connected,
    shortest_path_lengths,
)


class TestBFS:
    def test_distances_on_path(self, path4):
        np.testing.assert_array_equal(bfs_distances(path4, 0), [0, 1, 2, 3])
        np.testing.assert_array_equal(bfs_distances(path4, 2), [2, 1, 0, 1])

    def test_unreachable_marked(self):
        g = Graph(4, [(0, 1)])
        d = bfs_distances(g, 0)
        assert d[2] == -1 and d[3] == -1

    def test_directed_respects_direction(self, directed_chain):
        np.testing.assert_array_equal(bfs_distances(directed_chain, 0), [0, 1, 2, 3])
        np.testing.assert_array_equal(bfs_distances(directed_chain, 3), [-1, -1, -1, 0])

    def test_order_is_level_sorted(self, two_cliques):
        order = bfs_order(two_cliques, 0)
        d = bfs_distances(two_cliques, 0)
        assert np.all(np.diff(d[order]) >= 0)
        assert order[0] == 0

    def test_isolated_source(self):
        g = Graph(3, [(1, 2)])
        assert bfs_order(g, 0).tolist() == [0]


class TestDFS:
    def test_visits_component(self, two_cliques):
        order = dfs_order(two_cliques, 0)
        assert sorted(order.tolist()) == list(range(8))

    def test_preorder_starts_at_source(self, path4):
        assert dfs_order(path4, 2)[0] == 2

    def test_dfs_path_order(self, path4):
        assert dfs_order(path4, 0).tolist() == [0, 1, 2, 3]

    def test_stops_at_component(self):
        g = Graph(5, [(0, 1), (2, 3)])
        assert sorted(dfs_order(g, 0).tolist()) == [0, 1]


class TestComponents:
    def test_single_component(self, triangle):
        assert connected_components(triangle).max() == 0
        assert is_connected(triangle)

    def test_multiple_components(self):
        g = Graph(6, [(0, 1), (2, 3)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert len(set(comp.tolist())) == 4  # two pairs + two isolated
        assert not is_connected(g)

    def test_directed_weak_components(self):
        g = Graph(3, [(0, 1), (2, 1)], directed=True)
        comp = connected_components(g)
        assert comp[0] == comp[1] == comp[2]

    def test_empty_graph_connected(self):
        assert is_connected(Graph(0))


class TestShortestPaths:
    def test_all_pairs_cycle(self):
        g = cycle_graph(6)
        d = shortest_path_lengths(g)
        assert d[0, 3] == 3
        assert d[0, 5] == 1
        np.testing.assert_array_equal(d, d.T)

    def test_subset_sources(self, path4):
        d = shortest_path_lengths(path4, sources=np.asarray([0]))
        assert d.shape == (1, 4)
        np.testing.assert_array_equal(d[0], [0, 1, 2, 3])


class TestEdgeBetweenness:
    def test_bridge_has_max_betweenness(self, two_cliques):
        bw = edge_betweenness(two_cliques)
        top = max(bw, key=bw.get)
        assert top == (3, 4)

    def test_path_middle_edge_highest(self):
        g = path_graph(5)
        bw = edge_betweenness(g, normalized=False)
        # Edge (1,2) carries paths: {0,1}x{2,3,4} = 6; (0,1) carries 4.
        assert bw[(1, 2)] == 6.0
        assert bw[(0, 1)] == 4.0

    def test_symmetric_graph_uniform(self):
        g = complete_graph(4)
        bw = edge_betweenness(g, normalized=False)
        values = list(bw.values())
        assert np.allclose(values, values[0])
        assert np.isclose(values[0], 1.0)  # only endpoints use each edge

    def test_normalization(self):
        g = path_graph(4)
        raw = edge_betweenness(g, normalized=False)
        norm = edge_betweenness(g, normalized=True)
        pairs = 4 * 3 / 2
        for k in raw:
            assert np.isclose(norm[k], raw[k] / pairs)

    def test_sampled_sources_approximates(self, two_cliques):
        exact = edge_betweenness(two_cliques, normalized=False)
        approx = edge_betweenness(
            two_cliques, sources=np.arange(8), normalized=False
        )
        for k in exact:
            assert np.isclose(exact[k], approx[k])

    def test_directed_rejected(self, directed_chain):
        with pytest.raises(ValueError):
            edge_betweenness(directed_chain)

    def test_empty_sources_rejected(self, triangle):
        with pytest.raises(ValueError):
            edge_betweenness(triangle, sources=np.asarray([], dtype=np.int64))

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(5)
        n = 20
        edges = set()
        while len(edges) < 40:
            u, v = rng.integers(0, n, 2)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        g = Graph(n, sorted(edges))
        ref_g = nx.Graph(sorted(edges))
        ref_g.add_nodes_from(range(n))
        ours = edge_betweenness(g, normalized=True)
        theirs_raw = nx.edge_betweenness_centrality(ref_g, normalized=True)
        theirs = {
            (min(u, v), max(u, v)): val for (u, v), val in theirs_raw.items()
        }
        for k, v in ours.items():
            assert np.isclose(v, theirs[k], atol=1e-9), k
