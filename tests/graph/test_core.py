"""Tests for the CSR Graph core."""

import numpy as np
import pytest

from repro.graph.core import EdgeList, Graph


class TestEdgeList:
    def test_basic_construction(self):
        e = EdgeList(np.asarray([0, 1]), np.asarray([1, 2]))
        assert len(e) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EdgeList(np.asarray([0, 1]), np.asarray([1]))

    def test_weight_alignment_enforced(self):
        with pytest.raises(ValueError):
            EdgeList(np.asarray([0]), np.asarray([1]), weights=np.asarray([1.0, 2.0]))

    def test_times_alignment_enforced(self):
        with pytest.raises(ValueError):
            EdgeList(np.asarray([0]), np.asarray([1]), times=np.asarray([1.0, 2.0]))

    def test_dtype_coercion(self):
        e = EdgeList([0.0, 1.0], [1.0, 2.0], weights=[1, 2])
        assert e.src.dtype == np.int64
        assert e.weights.dtype == np.float64


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph(5)
        assert g.n == 5
        assert g.num_edges == 0
        assert g.num_arcs == 0

    def test_zero_vertex_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert len(g) == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_tuple_edges(self, triangle):
        assert triangle.num_edges == 3
        assert triangle.num_arcs == 6  # symmetrized

    def test_weighted_tuples(self):
        g = Graph(3, [(0, 1, 2.5), (1, 2, 0.5)])
        assert g.weighted
        assert g.edge_weights is not None
        assert g.edge_weights.shape == (4,)

    def test_temporal_tuples(self):
        g = Graph(3, [(0, 1, 1.0, 5.0), (1, 2, 1.0, 6.0)], directed=True)
        assert g.temporal
        assert g.edge_times.shape == (2,)

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1), (1, 2, 1.0)])

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0,)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])
        with pytest.raises(ValueError):
            Graph(2, [(-1, 0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 1, -1.0)])

    def test_directed_arcs_not_symmetrized(self, directed_chain):
        assert directed_chain.num_arcs == 3
        assert directed_chain.directed

    def test_self_loop_single_arc_undirected(self):
        g = Graph(2, [(0, 0), (0, 1)])
        # Self-loop stored once; the 0-1 edge twice.
        assert g.num_arcs == 3

    def test_vertex_weights_validated(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)], vertex_weights=[1.0, 2.0])  # wrong length
        with pytest.raises(ValueError):
            Graph(2, [(0, 1)], vertex_weights=[-1.0, 2.0])  # negative

    def test_from_adjacency_undirected(self):
        a = np.asarray([[0, 1, 0], [1, 0, 2], [0, 2, 0]], dtype=float)
        g = Graph.from_adjacency(a)
        assert g.num_edges == 2
        assert g.weighted  # weight 2 present

    def test_from_adjacency_unit_weights_dropped(self):
        a = np.asarray([[0, 1], [1, 0]], dtype=float)
        g = Graph.from_adjacency(a)
        assert not g.weighted

    def test_from_adjacency_asymmetric_rejected(self):
        a = np.asarray([[0, 1], [0, 0]], dtype=float)
        with pytest.raises(ValueError):
            Graph.from_adjacency(a, directed=False)

    def test_from_adjacency_directed(self):
        a = np.asarray([[0, 1], [0, 0]], dtype=float)
        g = Graph.from_adjacency(a, directed=True)
        assert g.num_arcs == 1

    def test_from_adjacency_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_adjacency(np.zeros((2, 3)))


class TestAdjacencyQueries:
    def test_neighbors_sorted_by_construction(self, triangle):
        assert set(triangle.neighbors(0).tolist()) == {1, 2}
        assert set(triangle.neighbors(1).tolist()) == {0, 2}

    def test_neighbors_out_of_range(self, triangle):
        with pytest.raises(IndexError):
            triangle.neighbors(3)

    def test_degree_scalar_and_vector(self, path4):
        assert path4.degree(0) == 1
        assert path4.degree(1) == 2
        np.testing.assert_array_equal(path4.degree(), [1, 2, 2, 1])

    def test_in_degrees_directed(self, directed_chain):
        np.testing.assert_array_equal(directed_chain.in_degrees(), [0, 1, 1, 1])
        np.testing.assert_array_equal(directed_chain.out_degrees(), [1, 1, 1, 0])

    def test_in_degrees_undirected_equal_out(self, triangle):
        np.testing.assert_array_equal(triangle.in_degrees(), triangle.out_degrees())

    def test_has_edge(self, directed_chain):
        assert directed_chain.has_edge(0, 1)
        assert not directed_chain.has_edge(1, 0)

    def test_arcs_iterator_matches_arc_array(self, triangle):
        it = list(triangle.arcs())
        src, dst = triangle.arc_array()
        assert it == list(zip(src.tolist(), dst.tolist()))

    def test_neighbor_slice(self, path4):
        s, e = path4.neighbor_slice(1)
        np.testing.assert_array_equal(path4.indices[s:e], path4.neighbors(1))

    def test_in_adjacency_directed(self, directed_chain):
        indptr, indices = directed_chain.in_adjacency()
        # In-neighbors of 2 is exactly {1}.
        assert indices[indptr[2] : indptr[3]].tolist() == [1]

    def test_in_adjacency_undirected_is_csr(self, triangle):
        indptr, indices = triangle.in_adjacency()
        assert indptr is triangle.indptr
        assert indices is triangle.indices


class TestLabels:
    def test_set_and_get(self, triangle):
        triangle.set_vertex_labels("color", ["r", "g", "b"])
        assert triangle.vertex_labels("color")[1] == "g"
        assert triangle.label_names == ["color"]

    def test_wrong_length_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.set_vertex_labels("x", [1, 2])

    def test_missing_label_keyerror(self, triangle):
        with pytest.raises(KeyError):
            triangle.vertex_labels("nope")

    def test_constructor_labels(self):
        g = Graph(2, [(0, 1)], vertex_labels={"a": [1, 2]})
        assert g.vertex_labels("a").tolist() == [1, 2]


class TestDerivedGraphs:
    def test_to_undirected(self, directed_chain):
        u = directed_chain.to_undirected()
        assert not u.directed
        assert u.has_edge(1, 0)

    def test_to_undirected_idempotent(self, triangle):
        assert triangle.to_undirected() is triangle

    def test_reverse(self, directed_chain):
        r = directed_chain.reverse()
        assert r.has_edge(1, 0)
        assert not r.has_edge(0, 1)
        np.testing.assert_array_equal(r.out_degrees(), directed_chain.in_degrees())

    def test_reverse_undirected_identity(self, triangle):
        assert triangle.reverse() is triangle

    def test_subgraph_preserves_structure(self, two_cliques):
        sub, mapping = two_cliques.subgraph([0, 1, 2, 3])
        assert sub.n == 4
        assert sub.num_edges == 6  # the clique
        np.testing.assert_array_equal(mapping, [0, 1, 2, 3])

    def test_subgraph_drops_cross_edges(self, two_cliques):
        sub, _ = two_cliques.subgraph([2, 3, 4, 5])
        # Within {2,3}: 1 edge; within {4,5}: 1 edge; bridge (3,4): 1 edge.
        assert sub.num_edges == 3

    def test_subgraph_labels_carried(self, two_cliques):
        sub, _ = two_cliques.subgraph([4, 5])
        assert sub.vertex_labels("community").tolist() == [1, 1]

    def test_subgraph_out_of_range(self, triangle):
        with pytest.raises(ValueError):
            triangle.subgraph([0, 9])

    def test_adjacency_matrix_roundtrip(self, triangle):
        a = triangle.adjacency_matrix()
        assert a.shape == (3, 3)
        np.testing.assert_array_equal(a, a.T)
        assert a.sum() == 6

    def test_total_edge_weight(self, weighted_star):
        assert weighted_star.total_edge_weight() == 6.0

    def test_total_edge_weight_unweighted_counts(self, triangle):
        assert triangle.total_edge_weight() == 3.0
