"""Tests for graph perturbations (missing/incorrect data models)."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import planted_partition
from repro.graph.perturb import add_noise_edges, drop_edges, rewire_edges


@pytest.fixture
def base():
    return planted_partition(n=80, groups=4, alpha=0.5, inter_edges=10, seed=0)


class TestDropEdges:
    def test_fraction_removed(self, base):
        out = drop_edges(base, 0.25, seed=0)
        assert out.num_edges == base.num_edges - round(0.25 * base.num_edges)

    def test_zero_noop(self, base):
        out = drop_edges(base, 0.0, seed=0)
        assert out.num_edges == base.num_edges

    def test_one_removes_all(self, base):
        assert drop_edges(base, 1.0, seed=0).num_edges == 0

    def test_surviving_edges_are_original(self, base):
        out = drop_edges(base, 0.5, seed=0)
        orig = {
            (int(min(u, v)), int(max(u, v)))
            for u, v in zip(base.edge_list.src, base.edge_list.dst)
        }
        for u, v in zip(out.edge_list.src, out.edge_list.dst):
            assert (int(min(u, v)), int(max(u, v))) in orig

    def test_labels_preserved(self, base):
        out = drop_edges(base, 0.3, seed=0)
        np.testing.assert_array_equal(
            out.vertex_labels("community"), base.vertex_labels("community")
        )

    def test_invalid_fraction(self, base):
        with pytest.raises(ValueError):
            drop_edges(base, -0.1)
        with pytest.raises(ValueError):
            drop_edges(base, 1.5)

    def test_reproducible(self, base):
        a = drop_edges(base, 0.4, seed=7)
        b = drop_edges(base, 0.4, seed=7)
        np.testing.assert_array_equal(a.edge_list.src, b.edge_list.src)

    def test_weights_carried(self):
        g = Graph(4, [(0, 1, 5.0), (1, 2, 3.0), (2, 3, 1.0), (0, 3, 2.0)])
        out = drop_edges(g, 0.5, seed=0)
        assert out.weighted
        assert out.num_edges == 2


class TestAddNoise:
    def test_count_added(self, base):
        out = add_noise_edges(base, 0.2, seed=0)
        assert out.num_edges == base.num_edges + round(0.2 * base.num_edges)

    def test_no_self_loops(self, base):
        out = add_noise_edges(base, 0.5, seed=1)
        e = out.edge_list
        assert np.all(e.src != e.dst)

    def test_zero_noop(self, base):
        assert add_noise_edges(base, 0.0, seed=0).num_edges == base.num_edges

    def test_negative_rejected(self, base):
        with pytest.raises(ValueError):
            add_noise_edges(base, -0.1)

    def test_temporal_noise_gets_valid_times(self, temporal_line):
        out = add_noise_edges(temporal_line, 1.0, seed=0)
        assert out.temporal
        times = out.edge_list.times
        assert times.min() >= 10.0 and times.max() <= 30.0

    def test_weighted_noise_gets_unit_weight(self, weighted_star):
        out = add_noise_edges(weighted_star, 1.0, seed=0)
        assert out.weighted
        assert out.edge_list.weights.shape[0] == 6


class TestRewire:
    def test_edge_count_constant(self, base):
        out = rewire_edges(base, 0.3, seed=0)
        assert out.num_edges == base.num_edges

    def test_zero_noop_exact(self, base):
        out = rewire_edges(base, 0.0, seed=0)
        np.testing.assert_array_equal(out.edge_list.src, base.edge_list.src)

    def test_full_rewire_destroys_structure(self, base):
        from repro.graph.metrics import modularity

        truth = base.vertex_labels("community")
        q_orig = modularity(base, truth)
        q_rewired = modularity(rewire_edges(base, 1.0, seed=0), truth)
        assert q_rewired < q_orig / 2

    def test_no_self_loops(self, base):
        out = rewire_edges(base, 1.0, seed=3)
        e = out.edge_list
        assert np.all(e.src != e.dst)

    def test_invalid_fraction(self, base):
        with pytest.raises(ValueError):
            rewire_edges(base, 2.0)
