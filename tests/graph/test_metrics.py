"""Tests for graph metrics (density, modularity, clustering, ...)."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.metrics import (
    average_clustering,
    degree_assortativity,
    degree_histogram,
    density,
    global_clustering,
    modularity,
    triangle_count,
)


class TestDensity:
    def test_complete_graph_density_one(self):
        assert density(complete_graph(6)) == 1.0

    def test_empty_density_zero(self):
        assert density(Graph(5)) == 0.0

    def test_tiny_graph(self):
        assert density(Graph(1)) == 0.0

    def test_directed_uses_ordered_pairs(self):
        g = Graph(3, [(0, 1), (1, 0)], directed=True)
        assert np.isclose(density(g), 2 / 6)


class TestModularity:
    def test_two_cliques_partition_positive(self, two_cliques):
        truth = two_cliques.vertex_labels("community")
        q = modularity(two_cliques, truth)
        assert q > 0.3

    def test_single_community_zero(self, triangle):
        assert np.isclose(modularity(triangle, np.zeros(3, dtype=int)), 0.0)

    def test_bad_partition_lower(self, two_cliques):
        truth = two_cliques.vertex_labels("community")
        scrambled = np.asarray([0, 1, 0, 1, 0, 1, 0, 1])
        assert modularity(two_cliques, truth) > modularity(two_cliques, scrambled)

    def test_matches_networkx(self, two_cliques):
        nx = pytest.importorskip("networkx")
        e = two_cliques.edge_list
        ref = nx.Graph(list(zip(e.src.tolist(), e.dst.tolist())))
        truth = two_cliques.vertex_labels("community")
        comms = [set(np.flatnonzero(truth == c).tolist()) for c in (0, 1)]
        expected = nx.algorithms.community.modularity(ref, comms)
        assert np.isclose(modularity(two_cliques, truth), expected)

    def test_weighted_modularity(self):
        g = Graph(4, [(0, 1, 10.0), (2, 3, 10.0), (1, 2, 0.1)])
        member = np.asarray([0, 0, 1, 1])
        assert modularity(g, member) > 0.4

    def test_directed_rejected(self, directed_chain):
        with pytest.raises(ValueError):
            modularity(directed_chain, np.zeros(4, dtype=int))

    def test_shape_validated(self, triangle):
        with pytest.raises(ValueError):
            modularity(triangle, np.zeros(2, dtype=int))

    def test_empty_graph(self):
        assert modularity(Graph(3), np.zeros(3, dtype=int)) == 0.0


class TestTriangles:
    def test_triangle_graph(self, triangle):
        assert triangle_count(triangle) == 1

    def test_complete_graph(self):
        assert triangle_count(complete_graph(5)) == 10  # C(5,3)

    def test_path_no_triangles(self, path4):
        assert triangle_count(path4) == 0

    def test_large_path_uses_sweep(self):
        # Exercise the > 512-vertex neighbor-intersection branch.
        g = path_graph(600)
        assert triangle_count(g) == 0

    def test_large_with_triangles(self):
        edges = [(i, i + 1) for i in range(599)] + [(0, 2)]
        g = Graph(600, edges)
        assert triangle_count(g) == 1


class TestClustering:
    def test_complete_graph_coefficient_one(self):
        assert np.isclose(average_clustering(complete_graph(5)), 1.0)

    def test_star_coefficient_zero(self):
        assert average_clustering(star_graph(5)) == 0.0

    def test_matches_networkx(self, two_cliques):
        nx = pytest.importorskip("networkx")
        e = two_cliques.edge_list
        ref = nx.Graph(list(zip(e.src.tolist(), e.dst.tolist())))
        expected = nx.average_clustering(ref)
        assert np.isclose(average_clustering(two_cliques), expected)

    def test_empty(self):
        assert average_clustering(Graph(0)) == 0.0


class TestGlobalClustering:
    def test_complete_graph_is_one(self):
        assert np.isclose(global_clustering(complete_graph(5)), 1.0)

    def test_star_and_path_are_zero(self, path4):
        assert global_clustering(star_graph(5)) == 0.0
        assert global_clustering(path4) == 0.0

    def test_matches_networkx_transitivity(self, two_cliques):
        nx = pytest.importorskip("networkx")
        e = two_cliques.edge_list
        ref = nx.Graph(list(zip(e.src.tolist(), e.dst.tolist())))
        assert np.isclose(global_clustering(two_cliques), nx.transitivity(ref))

    def test_large_graph_stays_csr(self):
        # > 512 vertices routes through the sparse sweep end to end.
        edges = [(i, i + 1) for i in range(599)] + [(0, 2)]
        g = Graph(600, edges)
        # one triangle over sum d(d-1)/2: vertices 0,1,2,3 have the
        # extra-degree contributions; compute from degrees directly.
        deg = g.out_degrees().astype(float)
        expected = 3.0 * 1 / float(np.sum(deg * (deg - 1)) / 2.0)
        assert np.isclose(global_clustering(g), expected)

    def test_directed_rejected(self, directed_chain):
        with pytest.raises(ValueError):
            global_clustering(directed_chain)

    def test_empty(self):
        assert global_clustering(Graph(0)) == 0.0


class TestDenseGuard:
    def test_large_adjacency_refused_without_force(self):
        g = path_graph(5000)
        with pytest.raises(ValueError, match="force=True"):
            g.adjacency_matrix()

    def test_small_graphs_unaffected(self, triangle):
        assert triangle.adjacency_matrix().shape == (3, 3)


class TestAssortativity:
    def test_star_is_disassortative(self):
        r = degree_assortativity(star_graph(10))
        assert r < 0 or np.isnan(r)  # star: all edges hub-leaf

    def test_regular_graph_nan(self):
        # Cycle: all degrees equal -> zero variance -> NaN.
        assert np.isnan(degree_assortativity(cycle_graph(6)))

    def test_empty_graph_nan(self):
        assert np.isnan(degree_assortativity(Graph(3)))


class TestDegreeHistogram:
    def test_path(self, path4):
        hist = degree_histogram(path4)
        assert hist[1] == 2 and hist[2] == 2

    def test_empty(self):
        assert degree_histogram(Graph(0)).tolist() == [0]
