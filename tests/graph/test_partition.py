"""Vertex partitioning and contiguous relabeling for the graph store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import planted_partition
from repro.graph.partition import (
    PARTITION_METHODS,
    contiguous_relabel,
    partition_vertices,
    shard_of,
)


@pytest.fixture(scope="module")
def g():
    return planted_partition(n=120, groups=4, alpha=0.7, inter_edges=60, seed=11)


class TestPartitionVertices:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_membership_is_total_and_in_range(self, g, method):
        m = partition_vertices(g, 4, method=method, seed=5)
        assert m.shape == (g.n,)
        assert m.min() >= 0 and m.max() < 4

    @pytest.mark.parametrize("method", ("bfs", "contiguous"))
    def test_chunk_methods_balance_within_one(self, g, method):
        m = partition_vertices(g, 4, method=method)
        sizes = np.bincount(m, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_label_propagation_uses_every_part(self, g):
        m = partition_vertices(g, 4, method="label_propagation", seed=5)
        # The planted communities are strong; packing them should keep
        # every part non-empty (sizes may differ by one community).
        assert np.unique(m).size == 4

    def test_num_parts_clamped_to_n(self):
        g = planted_partition(n=3, groups=1, alpha=0.9, inter_edges=0, seed=0)
        m = partition_vertices(g, 10, method="contiguous")
        assert m.max() < 3

    def test_single_part_is_all_zero(self, g):
        assert not partition_vertices(g, 1).any()

    def test_rejects_bad_arguments(self, g):
        with pytest.raises(ValueError):
            partition_vertices(g, 0)
        with pytest.raises(ValueError):
            partition_vertices(g, 2, method="metis")

    def test_deterministic_for_fixed_seed(self, g):
        a = partition_vertices(g, 4, method="label_propagation", seed=9)
        b = partition_vertices(g, 4, method="label_propagation", seed=9)
        assert np.array_equal(a, b)

    def test_bfs_keeps_neighbors_local(self, g):
        """BFS chunking should beat random assignment on edge locality."""
        m = partition_vertices(g, 4, method="bfs")
        src, dst = g.arc_array()
        bfs_cut = float(np.mean(m[src] != m[dst]))
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 4, size=g.n)
        rand_cut = float(np.mean(rand[src] != rand[dst]))
        assert bfs_cut < rand_cut


class TestContiguousRelabel:
    def test_perm_is_permutation_and_bounds_cover(self, g):
        m = partition_vertices(g, 4, method="bfs")
        perm, bounds = contiguous_relabel(m)
        assert np.array_equal(np.sort(perm), np.arange(g.n))
        assert bounds[0] == 0 and bounds[-1] == g.n
        # Every new-id range holds exactly the vertices of its part.
        for part in range(4):
            originals = perm[bounds[part] : bounds[part + 1]]
            assert np.all(m[originals] == part)

    def test_relabel_is_stable_within_part(self):
        m = np.array([1, 0, 1, 0, 1])
        perm, bounds = contiguous_relabel(m)
        assert perm.tolist() == [1, 3, 0, 2, 4]
        assert bounds.tolist() == [0, 2, 5]

    def test_rejects_negative_membership(self):
        with pytest.raises(ValueError):
            contiguous_relabel(np.array([0, -1, 1]))


class TestShardOf:
    def test_maps_new_ids_to_owning_shard(self):
        bounds = np.array([0, 3, 7, 10])
        vertices = np.array([0, 2, 3, 6, 7, 9])
        assert shard_of(bounds, vertices).tolist() == [0, 0, 1, 1, 2, 2]
