"""Tests for graph generators, including the paper's planted partition."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    planted_partition,
    random_geometric,
    star_graph,
    stochastic_block_model,
)
from repro.graph.metrics import density
from repro.graph.traversal import connected_components


class TestPlantedPartition:
    def test_paper_defaults_shape(self):
        g = planted_partition(seed=0)
        assert g.n == 1000
        truth = g.vertex_labels("community")
        counts = np.bincount(truth)
        assert counts.shape == (10,)
        assert np.all(counts == 100)

    def test_edge_count_formula(self):
        # alpha=0.5, groups of 100 -> 0.5 * 100*99/2 = 2475 intra per group.
        g = planted_partition(n=1000, groups=10, alpha=0.5, inter_edges=200, seed=1)
        assert g.num_edges == 10 * 2475 + 200

    def test_alpha_one_makes_cliques(self):
        g = planted_partition(n=40, groups=2, alpha=1.0, inter_edges=0, seed=0)
        truth = g.vertex_labels("community")
        # Every pair inside a group must be connected.
        for grp in (0, 1):
            members = np.flatnonzero(truth == grp)
            for i in members:
                nbrs = set(g.neighbors(int(i)).tolist())
                assert nbrs >= (set(members.tolist()) - {int(i)})

    def test_alpha_zero_no_intra(self):
        g = planted_partition(n=40, groups=2, alpha=0.0, inter_edges=10, seed=0)
        truth = g.vertex_labels("community")
        e = g.edge_list
        assert np.all(truth[e.src] != truth[e.dst])
        assert g.num_edges == 10

    def test_inter_edges_cross_groups(self):
        g = planted_partition(n=100, groups=5, alpha=0.2, inter_edges=30, seed=3)
        truth = g.vertex_labels("community")
        e = g.edge_list
        cross = truth[e.src] != truth[e.dst]
        assert cross.sum() == 30

    def test_no_duplicate_edges(self):
        g = planted_partition(n=100, groups=5, alpha=0.9, inter_edges=50, seed=2)
        e = g.edge_list
        canon = set()
        for u, v in zip(e.src, e.dst):
            key = (min(u, v), max(u, v))
            assert key not in canon
            canon.add(key)

    def test_no_self_loops(self):
        g = planted_partition(n=100, groups=5, alpha=0.5, inter_edges=20, seed=4)
        e = g.edge_list
        assert np.all(e.src != e.dst)

    def test_reproducible(self):
        a = planted_partition(n=60, groups=3, alpha=0.4, inter_edges=9, seed=11)
        b = planted_partition(n=60, groups=3, alpha=0.4, inter_edges=9, seed=11)
        np.testing.assert_array_equal(a.edge_list.src, b.edge_list.src)
        np.testing.assert_array_equal(a.edge_list.dst, b.edge_list.dst)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            planted_partition(n=10, groups=3)  # not a multiple
        with pytest.raises(ValueError):
            planted_partition(alpha=1.5)
        with pytest.raises(ValueError):
            planted_partition(inter_edges=-1)

    def test_density_scales_with_alpha(self):
        d_lo = density(planted_partition(n=200, groups=4, alpha=0.1, inter_edges=0, seed=0))
        d_hi = density(planted_partition(n=200, groups=4, alpha=0.9, inter_edges=0, seed=0))
        assert d_hi > 5 * d_lo


class TestErdosRenyi:
    def test_p_zero_and_one(self):
        assert erdos_renyi(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=0).num_edges == 45

    def test_expected_density(self):
        g = erdos_renyi(200, 0.1, seed=0)
        assert 0.07 < density(g) < 0.13

    def test_directed(self):
        g = erdos_renyi(20, 1.0, directed=True, seed=0)
        assert g.num_arcs == 20 * 19

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 50, 3
        g = barabasi_albert(n, m, seed=0)
        assert g.num_edges == m + (n - m - 1) * m

    def test_connected(self):
        g = barabasi_albert(80, 2, seed=1)
        assert connected_components(g).max() == 0

    def test_heavy_tail(self):
        g = barabasi_albert(300, 2, seed=2)
        deg = g.out_degrees()
        assert deg.max() > 4 * np.median(deg)

    def test_invalid(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)


class TestSBM:
    def test_block_structure(self):
        p = np.asarray([[0.9, 0.01], [0.01, 0.9]])
        g = stochastic_block_model([30, 30], p, seed=0)
        truth = g.vertex_labels("community")
        e = g.edge_list
        intra = (truth[e.src] == truth[e.dst]).mean()
        assert intra > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model([5], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5], np.asarray([[0.5, 0.2], [0.3, 0.5]]))
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5], np.asarray([[1.5, 0], [0, 1.5]]))


class TestRandomGeometric:
    def test_radius_controls_edges(self):
        sparse = random_geometric(60, 0.05, seed=0)
        dense = random_geometric(60, 0.5, seed=0)
        assert dense.num_edges > sparse.num_edges

    def test_positions_stored(self):
        g = random_geometric(10, 0.3, seed=0)
        assert "pos0" in g.label_names and "pos1" in g.label_names

    def test_edges_respect_radius(self):
        g = random_geometric(40, 0.25, seed=1)
        x = g.vertex_labels("pos0")
        y = g.vertex_labels("pos1")
        e = g.edge_list
        d = np.hypot(x[e.src] - x[e.dst], y[e.src] - y[e.dst])
        assert np.all(d <= 0.25 + 1e-12)


class TestDeterministicShapes:
    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert np.all(g.out_degrees() == 5)

    def test_cycle(self):
        g = cycle_graph(5)
        assert np.all(g.out_degrees() == 2)
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert all(g.degree(i) == 1 for i in range(1, 5))

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        # Corner has degree 2, center degree 4.
        assert g.degree(0) == 2
        assert g.degree(5) == 4
