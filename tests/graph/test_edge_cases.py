"""Cross-cutting edge cases for the graph substrate."""

import numpy as np
import pytest

from repro.graph.core import EdgeList, Graph
from repro.graph.traversal import bfs_distances, connected_components, edge_betweenness


class TestTemporalDirectedDerived:
    def test_subgraph_keeps_times_and_weights(self, temporal_line):
        sub, mapping = temporal_line.subgraph([0, 1, 2])
        assert sub.temporal and sub.weighted and sub.directed
        assert sub.num_edges == 2
        np.testing.assert_allclose(np.sort(sub.edge_list.times), [10.0, 20.0])

    def test_to_undirected_duplicates_times(self, temporal_line):
        und = temporal_line.to_undirected()
        assert und.temporal
        assert und.num_arcs == 6  # each edge both ways

    def test_reverse_keeps_times(self, temporal_line):
        rev = temporal_line.reverse()
        assert rev.temporal
        assert rev.has_edge(1, 0)
        np.testing.assert_allclose(
            np.sort(rev.edge_list.times), np.sort(temporal_line.edge_list.times)
        )


class TestLargeIds:
    def test_vertex_ids_near_n(self):
        n = 10_000
        g = Graph(n, [(0, n - 1), (n - 2, n - 1)])
        assert g.has_edge(0, n - 1)
        assert g.degree(n - 1) == 2

    def test_many_isolated_vertices(self):
        g = Graph(1000, [(0, 1)])
        comp = connected_components(g)
        # 1 two-vertex component + 998 singletons = 999 components.
        assert comp.max() == 998


class TestParallelEdges:
    def test_parallel_edges_kept_as_arcs(self):
        # The graph model is a multigraph: repeated edges are repeated arcs.
        g = Graph(2, [(0, 1), (0, 1)])
        assert g.num_edges == 2
        assert g.num_arcs == 4

    def test_parallel_weighted_edges_sum_in_adjacency(self):
        g = Graph(2, [(0, 1, 2.0), (0, 1, 3.0)])
        a = g.adjacency_matrix()
        assert a[0, 1] == 5.0


class TestBetweennessEdgeCases:
    def test_graph_with_isolated_vertices(self):
        g = Graph(5, [(0, 1), (1, 2)])
        bw = edge_betweenness(g, normalized=False)
        assert bw[(0, 1)] == 2.0  # paths 0-1, 0-2

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        bw = edge_betweenness(g, normalized=False)
        assert bw[(0, 1)] == 1.0

    def test_disconnected_components_independent(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        bw = edge_betweenness(g, normalized=False)
        assert bw[(0, 1)] == bw[(3, 4)]


class TestBFSSelfLoop:
    def test_self_loop_does_not_break_bfs(self):
        g = Graph(3, [(0, 0), (0, 1), (1, 2)])
        np.testing.assert_array_equal(bfs_distances(g, 0), [0, 1, 2])


class TestEdgeListColumnsRoundTrip:
    def test_times_without_weights_via_edgelist(self):
        e = EdgeList(
            np.asarray([0, 1]),
            np.asarray([1, 2]),
            weights=None,
            times=np.asarray([5.0, 6.0]),
        )
        g = Graph(3, e, directed=True)
        assert g.temporal and not g.weighted
