"""Tests for the LFR-style benchmark generator."""

import numpy as np
import pytest

from repro.graph.lfr import lfr_benchmark
from repro.graph.traversal import connected_components


class TestLFR:
    def test_basic_shape(self):
        g = lfr_benchmark(300, mu=0.2, seed=0)
        assert g.n == 300
        assert g.num_edges > 0
        truth = g.vertex_labels("community")
        sizes = np.bincount(truth)
        assert sizes.min() >= 20 or len(sizes) == 1

    def test_mixing_parameter_controls_cross_edges(self):
        rates = {}
        for mu in (0.1, 0.5):
            g = lfr_benchmark(400, mu=mu, seed=1)
            truth = g.vertex_labels("community")
            e = g.edge_list
            rates[mu] = (truth[e.src] != truth[e.dst]).mean()
        assert rates[0.1] < rates[0.5]
        assert rates[0.1] < 0.25

    def test_heterogeneous_degrees(self):
        g = lfr_benchmark(500, mu=0.2, seed=2)
        deg = g.out_degrees()
        assert deg.max() >= 3 * np.median(deg)

    def test_degrees_track_targets(self):
        g = lfr_benchmark(400, mu=0.3, min_degree=6, seed=3)
        deg = g.out_degrees()
        # Stub-matching loses a few edges to rejections; most degrees
        # should stay near the minimum or above.
        assert np.median(deg) >= 4

    def test_no_self_loops_no_duplicates(self):
        g = lfr_benchmark(200, mu=0.3, seed=4)
        e = g.edge_list
        assert np.all(e.src != e.dst)
        pairs = list(zip(np.minimum(e.src, e.dst), np.maximum(e.src, e.dst)))
        assert len(pairs) == len(set(map(tuple, pairs)))

    def test_reproducible(self):
        a = lfr_benchmark(200, mu=0.2, seed=9)
        b = lfr_benchmark(200, mu=0.2, seed=9)
        np.testing.assert_array_equal(a.edge_list.src, b.edge_list.src)
        np.testing.assert_array_equal(
            a.vertex_labels("community"), b.vertex_labels("community")
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            lfr_benchmark(30)  # too small for default community bounds
        with pytest.raises(ValueError):
            lfr_benchmark(200, mu=1.5)
        with pytest.raises(ValueError):
            lfr_benchmark(200, min_degree=0)
        with pytest.raises(ValueError):
            lfr_benchmark(200, min_community=1)

    def test_mostly_connected_at_low_mu(self):
        g = lfr_benchmark(300, mu=0.3, seed=5)
        comp = connected_components(g)
        assert np.bincount(comp).max() > 0.85 * g.n

    def test_detectable_communities(self):
        """The generated structure must be detectable by modularity
        methods at low mixing — sanity that it is a usable benchmark."""
        from repro.community import louvain_communities
        from repro.ml.metrics import adjusted_rand_index

        g = lfr_benchmark(300, mu=0.1, seed=6)
        truth = g.vertex_labels("community")
        labels = louvain_communities(g, seed=0)
        assert adjusted_rand_index(truth, labels) > 0.7
