"""Out-of-core graph store: build/open/verify, round-trip, corruption.

The store is build-once and immutable; these tests pin the three
contracts the rest of the stack leans on: (1) the mmap'd CSR plus the
persisted permutation reconstruct the source graph exactly — labels,
weights, timestamps and all; (2) both backends satisfy the ``GraphView``
protocol, so engines can stay backend-blind; (3) a torn or tampered
store never loads — it is quarantined and raises the typed
``StoreCorrupt``, mirroring ``CheckpointCorrupt``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.graph.core import EdgeList, Graph
from repro.graph.io import load_graph, save_graph
from repro.graph.store import GraphStore, StoreCorrupt
from repro.graph.view import GraphView, is_graph_view


def rich_graph(n: int = 40, seed: int = 3) -> Graph:
    """Connected graph with weights, times, vertex weights, and labels."""
    rng = np.random.default_rng(seed)
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    extra = rng.integers(0, n, size=(2 * n, 2))
    extra = extra[extra[:, 0] != extra[:, 1]]
    s = np.concatenate([src, extra[:, 0]])
    d = np.concatenate([dst, extra[:, 1]])
    w = rng.uniform(0.1, 5.0, size=s.size)
    t = rng.uniform(0.0, 100.0, size=s.size)
    g = Graph(
        n,
        EdgeList(s, d, weights=w, times=t),
        vertex_weights=rng.uniform(0.5, 2.0, size=n),
    )
    g.set_vertex_labels("community", rng.integers(0, 4, size=n))
    return g


def canonical_edges(g: Graph) -> set[tuple]:
    src, dst = g.arc_array()
    w = g.edge_weights
    t = g.edge_times
    rows = set()
    for i in range(src.size):
        a, b = int(src[i]), int(dst[i])
        key = (min(a, b), max(a, b))
        rows.add(
            (
                key,
                None if w is None else round(float(w[i]), 9),
                None if t is None else round(float(t[i]), 9),
            )
        )
    return rows


class TestBuildOpen:
    def test_build_then_open_roundtrip(self, tmp_path):
        g = rich_graph()
        store = GraphStore.build(g, tmp_path / "store", shards=4, seed=1)
        assert store.n == g.n
        assert store.num_edges == g.num_edges
        assert store.num_arcs == g.num_arcs
        assert store.num_shards == 4
        reopened = GraphStore.open(tmp_path / "store")
        assert reopened.n == g.n
        assert np.array_equal(reopened.indptr, store.indptr)
        assert np.array_equal(reopened.indices, store.indices)

    def test_shard_bounds_cover_vertex_range(self, tmp_path):
        store = GraphStore.build(rich_graph(), tmp_path / "s", shards=4)
        bounds = store.shard_bounds
        assert bounds[0] == 0 and bounds[-1] == store.n
        assert np.all(np.diff(bounds) >= 0)
        total = sum(sh.num_vertices for sh in store.shards())
        assert total == store.n

    def test_build_is_build_once(self, tmp_path):
        g = rich_graph()
        GraphStore.build(g, tmp_path / "s", shards=2)
        with pytest.raises(FileExistsError):
            GraphStore.build(g, tmp_path / "s", shards=2)

    def test_arrays_are_memory_mapped(self, tmp_path):
        store = GraphStore.build(rich_graph(), tmp_path / "s", shards=2)
        assert isinstance(store.indices, np.memmap)
        assert store.mmap_backed is True

    def test_every_partition_method_builds(self, tmp_path):
        g = rich_graph()
        for method in ("bfs", "label_propagation", "contiguous"):
            store = GraphStore.build(
                g, tmp_path / method, shards=3, method=method, seed=7
            )
            back = store.to_graph()
            assert canonical_edges(back) == canonical_edges(g)

    def test_temporal_rows_are_time_sorted(self, tmp_path):
        store = GraphStore.build(rich_graph(), tmp_path / "s", shards=3)
        assert store.manifest["rows_time_sorted"] is True
        indptr = np.asarray(store.indptr)
        times = np.asarray(store.edge_times)
        for v in range(store.n):
            row = times[indptr[v] : indptr[v + 1]]
            assert np.all(np.diff(row) >= 0)


class TestGraphViewProtocol:
    def test_graph_satisfies_view(self):
        assert is_graph_view(rich_graph())

    def test_store_satisfies_view(self, tmp_path):
        store = GraphStore.build(rich_graph(), tmp_path / "s", shards=2)
        assert is_graph_view(store)
        assert isinstance(store, GraphView)

    def test_view_surface_matches_graph(self, tmp_path):
        g = rich_graph()
        store = GraphStore.build(g, tmp_path / "s", shards=1, method="contiguous")
        # Single contiguous shard keeps the identity permutation, so the
        # CSR row *sets* line up vertex by vertex.
        assert np.array_equal(store.permutation(), np.arange(g.n))
        for v in range(g.n):
            assert set(map(int, store.neighbors(v))) == set(map(int, g.neighbors(v)))
            assert store.degree(v) == g.degree(v)
        assert np.array_equal(store.out_degrees(), g.out_degrees())


class TestRoundTrip:
    def test_to_graph_preserves_everything(self, tmp_path):
        g = rich_graph()
        store = GraphStore.build(g, tmp_path / "s", shards=4, seed=2)
        back = store.to_graph()
        assert back.n == g.n
        assert canonical_edges(back) == canonical_edges(g)
        assert np.allclose(back.vertex_weights, g.vertex_weights)
        assert np.array_equal(
            back.vertex_labels("community"), g.vertex_labels("community")
        )

    def test_io_load_graph_accepts_store_directory(self, tmp_path):
        g = rich_graph()
        GraphStore.build(g, tmp_path / "s", shards=4, seed=2)
        back = load_graph(tmp_path / "s")
        assert canonical_edges(back) == canonical_edges(g)
        assert np.array_equal(
            back.vertex_labels("community"), g.vertex_labels("community")
        )

    def test_io_save_graph_accepts_store(self, tmp_path):
        g = rich_graph()
        store = GraphStore.build(g, tmp_path / "s", shards=3)
        save_graph(store, tmp_path / "g.npz")
        back = load_graph(tmp_path / "g.npz")
        assert canonical_edges(back) == canonical_edges(g)
        assert np.allclose(back.vertex_weights, g.vertex_weights)


class TestIntegrity:
    def test_verify_passes_on_clean_store(self, tmp_path):
        store = GraphStore.build(rich_graph(), tmp_path / "s", shards=2)
        store.verify()  # must not raise

    def test_truncated_array_quarantines_on_open(self, tmp_path):
        GraphStore.build(rich_graph(), tmp_path / "s", shards=2)
        victim = tmp_path / "s" / "indices.npy"
        victim.write_bytes(victim.read_bytes()[:-64])
        with pytest.raises(StoreCorrupt):
            GraphStore.open(tmp_path / "s")
        assert not (tmp_path / "s").exists(), "corrupt store not quarantined"
        assert any(p.name.startswith("s.corrupt.") for p in tmp_path.iterdir())

    def test_bitflip_fails_full_verify(self, tmp_path):
        store = GraphStore.build(rich_graph(), tmp_path / "s", shards=2)
        victim = tmp_path / "s" / "weights.npy"
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(StoreCorrupt):
            store.verify()
        assert not (tmp_path / "s").exists()

    def test_manifest_tamper_detected(self, tmp_path):
        GraphStore.build(rich_graph(), tmp_path / "s", shards=2)
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["num_edges"] = 1
        manifest_path.write_text(json.dumps(manifest))
        # The tamper trips either open's structural validation or the
        # full re-hash — both surface as the typed StoreCorrupt.
        with pytest.raises(StoreCorrupt):
            GraphStore.open(tmp_path / "s").verify()

    def test_missing_store_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            GraphStore.open(tmp_path / "nope")
