"""Tests for the ForceAtlas layout."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import planted_partition
from repro.viz.forceatlas import force_atlas_layout
from repro.viz.projection import separation_ratio


class TestForceAtlas:
    def test_output_shape(self, two_cliques):
        layout = force_atlas_layout(two_cliques, iterations=30, seed=0)
        assert layout.positions.shape == (8, 2)
        assert np.all(np.isfinite(layout.positions))
        assert layout.iterations == 30

    def test_empty_graph(self):
        layout = force_atlas_layout(Graph(0), iterations=5, seed=0)
        assert layout.positions.shape == (0, 2)

    def test_single_vertex(self):
        layout = force_atlas_layout(Graph(1), iterations=5, seed=0)
        assert layout.positions.shape == (1, 2)

    def test_connected_pairs_closer_than_average(self, two_cliques):
        layout = force_atlas_layout(two_cliques, iterations=150, seed=0)
        pos = layout.positions
        e = two_cliques.edge_list
        edge_d = np.linalg.norm(pos[e.src] - pos[e.dst], axis=1).mean()
        all_d = np.linalg.norm(
            pos[:, None, :] - pos[None, :, :], axis=2
        )[np.triu_indices(8, 1)].mean()
        assert edge_d < all_d

    def test_separates_planted_communities(self):
        g = planted_partition(n=60, groups=3, alpha=0.8, inter_edges=5, seed=0)
        layout = force_atlas_layout(g, iterations=200, seed=0)
        ratio = separation_ratio(layout.positions, g.vertex_labels("community"))
        assert ratio > 1.0

    def test_deterministic(self, two_cliques):
        a = force_atlas_layout(two_cliques, iterations=20, seed=3)
        b = force_atlas_layout(two_cliques, iterations=20, seed=3)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_directed_input_accepted(self, directed_chain):
        layout = force_atlas_layout(directed_chain, iterations=20, seed=0)
        assert layout.positions.shape == (4, 2)

    def test_iterations_validated(self, two_cliques):
        with pytest.raises(ValueError):
            force_atlas_layout(two_cliques, iterations=0)
