"""Tests for the ASCII renderers."""

import numpy as np
import pytest

from repro.viz.ascii import render_scatter, render_series


class TestRenderScatter:
    def test_grid_dimensions(self, rng):
        pts = rng.random((50, 2))
        out = render_scatter(pts, width=40, height=10)
        lines = out.split("\n")
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)

    def test_legend_with_labels(self, rng):
        pts = rng.random((20, 2))
        labels = np.repeat(["a", "b"], 10)
        out = render_scatter(pts, labels, width=20, height=5)
        assert "legend:" in out
        assert "a" in out and "b" in out

    def test_all_points_rendered_distinct_cells(self):
        pts = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        out = render_scatter(pts, width=10, height=4)
        assert sum(1 for c in out if c != " " and c != "\n") == 2

    def test_degenerate_same_point(self):
        pts = np.zeros((5, 2))
        out = render_scatter(pts, width=8, height=4)
        assert sum(1 for c in out if c not in " \n") == 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            render_scatter(rng.random(5))
        with pytest.raises(ValueError):
            render_scatter(rng.random((5, 2)), width=1)

    def test_extra_columns_ignored(self, rng):
        out = render_scatter(rng.random((10, 3)), width=10, height=5)
        assert len(out.split("\n")) == 5


class TestRenderSeries:
    def test_basic(self):
        x = np.linspace(0, 1, 20)
        out = render_series(x, {"line": x**2}, width=30, height=8)
        lines = out.split("\n")
        assert len(lines) == 10  # header + 8 rows + legend
        assert "legend:" in lines[-1]
        assert "y∈" in lines[0]

    def test_multiple_series_distinct_glyphs(self):
        x = np.linspace(0, 1, 10)
        out = render_series(x, {"a": x, "b": 1 - x}, width=20, height=6)
        body = "\n".join(out.split("\n")[1:-1])
        assert "o" in body and "x" in body

    def test_fixed_y_range(self):
        x = np.asarray([0.0, 1.0])
        out = render_series(x, {"s": np.asarray([0.2, 0.4])}, y_min=0, y_max=1)
        assert "y∈[0, 1]" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_series(np.asarray([1.0]), {})
        with pytest.raises(ValueError):
            render_series(np.asarray([1.0, 2.0]), {"s": np.asarray([1.0])})

    def test_constant_series(self):
        x = np.linspace(0, 1, 5)
        out = render_series(x, {"c": np.ones(5)})
        assert "c" in out
