"""Tests for projection helpers."""

import numpy as np
import pytest

from repro.viz.projection import (
    cluster_boundaries,
    pca_projection,
    projection_to_csv,
    separation_ratio,
)


def blobs(rng):
    pts = np.vstack(
        [rng.normal(0, 0.2, (20, 2)), rng.normal(5, 0.2, (20, 2))]
    )
    return pts, np.repeat([0, 1], 20)


class TestPCAProjection:
    def test_shape(self, rng):
        out = pca_projection(rng.random((30, 10)), 2)
        assert out.shape == (30, 2)

    def test_3d(self, rng):
        assert pca_projection(rng.random((30, 10)), 3).shape == (30, 3)


class TestClusterBoundaries:
    def test_centroids_correct(self, rng):
        pts, labels = blobs(rng)
        centroids, margins = cluster_boundaries(pts, labels)
        np.testing.assert_allclose(centroids[0], pts[:20].mean(axis=0))
        np.testing.assert_allclose(centroids[1], pts[20:].mean(axis=0))

    def test_margins_positive_for_separated(self, rng):
        pts, labels = blobs(rng)
        _c, margins = cluster_boundaries(pts, labels)
        assert np.all(margins > 0)

    def test_margin_negative_for_misassigned(self, rng):
        pts, labels = blobs(rng)
        wrong = labels.copy()
        wrong[0] = 1  # point near blob 0 labeled as blob 1
        _c, margins = cluster_boundaries(pts, wrong)
        assert margins[0] < 0


class TestSeparationRatio:
    def test_separated_blobs_high(self, rng):
        pts, labels = blobs(rng)
        assert separation_ratio(pts, labels) > 5

    def test_mixed_low(self, rng):
        pts = rng.random((60, 2))
        labels = rng.integers(0, 2, 60)
        assert separation_ratio(pts, labels) < 1.0

    def test_single_group_rejected(self, rng):
        with pytest.raises(ValueError):
            separation_ratio(rng.random((10, 2)), np.zeros(10))

    def test_zero_spread_infinite(self):
        pts = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        assert separation_ratio(pts, np.asarray([0, 1])) == float("inf")


class TestCSVExport:
    def test_2d_roundtrip(self, rng, tmp_path):
        pts, labels = blobs(rng)
        p = tmp_path / "fig.csv"
        projection_to_csv(pts, labels, p, label_name="community")
        lines = p.read_text().strip().split("\n")
        assert lines[0] == "x,y,community"
        assert len(lines) == 41
        x, y, lab = lines[1].split(",")
        assert np.isclose(float(x), pts[0, 0], atol=1e-5)

    def test_3d_header(self, rng, tmp_path):
        pts = rng.random((5, 3))
        p = tmp_path / "fig.csv"
        projection_to_csv(pts, np.arange(5), p)
        assert p.read_text().startswith("x,y,z,label")

    def test_validation(self, rng, tmp_path):
        with pytest.raises(ValueError):
            projection_to_csv(rng.random((5, 4)), np.arange(5), tmp_path / "x.csv")
        with pytest.raises(ValueError):
            projection_to_csv(rng.random((5, 2)), np.arange(4), tmp_path / "x.csv")
