"""Pipeline composition: ordering, caching/skip, error transparency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import (
    ExecutionContext,
    FingerprintMismatch,
    Pipeline,
    PipelineStage,
    StageError,
)


class AppendStage(PipelineStage):
    """value -> value + [tag]; records that it ran."""

    def __init__(self, tag: str):
        self.name = tag
        self.calls = 0

    def run(self, ctx, value):
        self.calls += 1
        return [*(value or []), self.name]


class CachedDouble(PipelineStage):
    """Doubles an array; opts into pipeline-level output caching."""

    name = "double"
    cache_output = True

    def __init__(self, factor: int = 2):
        self.factor = factor
        self.calls = 0

    def fingerprint(self, ctx, value):
        return {"stage": self.name, "factor": self.factor}

    def run(self, ctx, value):
        self.calls += 1
        return np.asarray(value) * self.factor


class Boom(PipelineStage):
    name = "boom"

    def run(self, ctx, value):
        raise KeyError("kaboom")


class TestComposition:
    def test_stages_run_in_order_and_outputs_collected(self):
        a, b, c = AppendStage("a"), AppendStage("b"), AppendStage("c")
        result = Pipeline([a, b, c]).execute()
        assert result.value == ["a", "b", "c"]
        assert result.outputs == {
            "a": ["a"],
            "b": ["a", "b"],
            "c": ["a", "b", "c"],
        }
        assert [r.name for r in result.reports] == ["a", "b", "c"]
        assert all(not r.skipped for r in result.reports)
        assert result.seconds_for("a", "b") >= 0.0

    def test_run_returns_final_value_only(self):
        assert Pipeline([AppendStage("a")]).run() == ["a"]

    def test_extended_builds_a_longer_pipeline(self):
        base = Pipeline([AppendStage("a")])
        longer = base.extended(AppendStage("b"))
        assert longer.names == ["a", "b"]
        assert base.names == ["a"]  # original untouched

    def test_empty_pipeline_rejected(self):
        with pytest.raises(StageError, match="at least one stage"):
            Pipeline([])

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(StageError, match="duplicate"):
            Pipeline([AppendStage("x"), AppendStage("x")])

    def test_unnamed_stage_rejected(self):
        class Nameless:
            name = ""

            def run(self, ctx, value):  # pragma: no cover
                return value

        with pytest.raises(StageError, match="no usable name"):
            Pipeline([Nameless()])

    def test_report_for_unknown_name(self):
        result = Pipeline([AppendStage("a")]).execute()
        with pytest.raises(KeyError):
            result.report_for("nope")


class TestErrorTransparency:
    def test_typed_errors_propagate_unchanged(self):
        with pytest.raises(KeyError, match="kaboom") as excinfo:
            Pipeline([AppendStage("a"), Boom()]).run()
        # the stage name is annotated, not wrapped
        assert "pipeline stage 'boom'" in "".join(
            excinfo.value.__notes__
        )


class TestStageCache:
    def test_resume_skips_cached_stage(self, tmp_path):
        stage = CachedDouble()
        ctx = ExecutionContext(checkpoint_dir=tmp_path)
        first = Pipeline([stage]).execute(np.arange(4), context=ctx)
        assert stage.calls == 1
        assert np.array_equal(first.value, np.arange(4) * 2)

        resumed = Pipeline([stage]).execute(
            np.arange(4), context=ExecutionContext(checkpoint_dir=tmp_path, resume=True)
        )
        assert stage.calls == 1  # restored, not recomputed
        assert resumed.report_for("double").skipped is True
        assert np.array_equal(resumed.value, first.value)

    def test_changed_fingerprint_refuses_stale_cache(self, tmp_path):
        ctx = ExecutionContext(checkpoint_dir=tmp_path)
        Pipeline([CachedDouble(factor=2)]).execute(np.arange(4), context=ctx)
        with pytest.raises(FingerprintMismatch):
            Pipeline([CachedDouble(factor=3)]).execute(
                np.arange(4),
                context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
            )

    def test_without_resume_cache_is_rewritten_not_read(self, tmp_path):
        stage = CachedDouble()
        ctx = ExecutionContext(checkpoint_dir=tmp_path)
        Pipeline([stage]).execute(np.arange(4), context=ctx)
        Pipeline([stage]).execute(np.arange(4), context=ctx)
        assert stage.calls == 2

    def test_no_checkpoint_dir_disables_cache(self):
        stage = CachedDouble()
        Pipeline([stage]).run(np.arange(4), context=ExecutionContext(resume=True))
        Pipeline([stage]).run(np.arange(4), context=ExecutionContext(resume=True))
        assert stage.calls == 2
