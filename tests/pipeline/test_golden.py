"""Golden determinism: a fixed-seed run must never drift.

The committed checksum below pins the exact bytes of the embedding a
fixed-seed ``V2V.fit`` produces on a planted-partition graph. Any change
to walk generation, training order, seeding, or the pipeline plumbing
that alters the numbers — even in the last bit — fails this test. CI
runs it in the bench-smoke job as the release gate for refactors that
claim to be behavior-preserving.

If a change *intentionally* alters the numerics (a new objective, a
fixed bug in the sampler), regenerate the checksum and commit it with
the change::

    REPRO_GOLDEN_PRINT=1 PYTHONPATH=src python -m pytest \
        tests/pipeline/test_golden.py -s

and paste the printed digest into ``GOLDEN_SHA256``.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro import V2V, V2VConfig
from repro.graph.generators import planted_partition

GOLDEN_SHA256 = "8b35c774f41ad36f41ef5183890fd7c129c809d7fec69e50f123b7a253d69f62"


def _golden_digest() -> str:
    graph = planted_partition(n=120, groups=4, alpha=0.7, inter_edges=60, seed=11)
    config = V2VConfig(
        dim=16, window=4, walks_per_vertex=4, walk_length=20, epochs=3, seed=42
    )
    model = V2V(config).fit(graph)
    vectors = np.ascontiguousarray(np.asarray(model.vectors, dtype=np.float64))
    return hashlib.sha256(vectors.tobytes()).hexdigest()


def test_fixed_seed_embedding_is_bitwise_stable():
    digest = _golden_digest()
    if os.environ.get("REPRO_GOLDEN_PRINT"):
        print(f"\ngolden digest: {digest}")
    assert digest == GOLDEN_SHA256, (
        "fixed-seed embedding drifted from the committed golden checksum; "
        "if the numeric change is intentional, regenerate with "
        "REPRO_GOLDEN_PRINT=1 (see module docstring)"
    )


def test_two_runs_in_one_process_are_identical():
    assert _golden_digest() == _golden_digest()
