"""Behavior of the concrete stages, alone and composed end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.pipeline import (
    DetectStage,
    ExecutionContext,
    LayoutStage,
    Pipeline,
    PredictStage,
    TrainStage,
    WalkStage,
)
from repro.walks.engine import RandomWalkConfig, generate_walks


@pytest.fixture(scope="module")
def small_graph():
    return planted_partition(n=60, groups=3, alpha=0.8, inter_edges=20, seed=9)


@pytest.fixture(scope="module")
def blob_vectors():
    """Three well-separated Gaussian blobs, 20 points each."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack(
        [rng.normal(c, 0.3, size=(20, 2)) for c in centers]
    )
    labels = np.repeat(np.arange(3), 20)
    return points, labels


class TestWalkAndTrainStages:
    def test_pipeline_matches_direct_engine_calls(self, small_graph):
        walk_cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=10, seed=3)
        train_cfg = TrainConfig(dim=8, epochs=2, seed=3)

        direct_corpus = generate_walks(small_graph, walk_cfg)
        direct = train_embeddings(direct_corpus, train_cfg)

        result = Pipeline(
            [WalkStage(walk_cfg), TrainStage(train_cfg)]
        ).execute(small_graph)

        assert np.array_equal(result.outputs["walks"].walks, direct_corpus.walks)
        assert np.array_equal(result.value.vectors, direct.vectors)

    def test_walk_stage_checkpoints_under_walks_scope(self, small_graph, tmp_path):
        walk_cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=10, seed=3)
        ctx = ExecutionContext(checkpoint_dir=tmp_path)
        Pipeline([WalkStage(walk_cfg)]).run(small_graph, context=ctx)
        assert (tmp_path / "walks" / "walks-0000.ckpt.npz").exists()

    def test_train_stage_checkpoints_at_root(self, small_graph, tmp_path):
        walk_cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=10, seed=3)
        corpus = generate_walks(small_graph, walk_cfg)
        ctx = ExecutionContext(checkpoint_dir=tmp_path)
        Pipeline([TrainStage(TrainConfig(dim=8, epochs=2, seed=3))]).run(
            corpus, context=ctx
        )
        assert (tmp_path / "trainer.ckpt.npz").exists()


class TestDetectStage:
    def test_recovers_planted_clusters(self, blob_vectors):
        points, truth = blob_vectors
        membership = Pipeline([DetectStage(3, n_init=5, seed=0)]).run(points)
        from repro.ml.metrics import adjusted_rand_index

        assert membership.shape == truth.shape
        assert membership.dtype == np.int64
        assert adjusted_rand_index(truth, membership) == 1.0

    def test_cached_resume_skips_clustering(self, blob_vectors, tmp_path):
        points, _ = blob_vectors
        stage = DetectStage(3, n_init=5, seed=0)
        first = Pipeline([stage]).run(
            points, context=ExecutionContext(checkpoint_dir=tmp_path)
        )
        resumed = Pipeline([stage]).execute(
            points,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        assert resumed.report_for("detect").skipped is True
        assert np.array_equal(resumed.value, first)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            DetectStage(0)


class TestPredictStage:
    def test_accuracy_on_separable_data(self, blob_vectors):
        points, truth = blob_vectors
        acc = Pipeline(
            [PredictStage(truth, k=3, folds=5, seed=0)]
        ).run(points)
        assert isinstance(acc, float)
        assert acc > 0.9

    def test_label_mismatch_is_typed(self, blob_vectors):
        points, _ = blob_vectors
        with pytest.raises(ValueError, match="does not match"):
            Pipeline([PredictStage(np.arange(5), seed=0)]).run(points)

    def test_cached_restore_returns_float(self, blob_vectors, tmp_path):
        points, truth = blob_vectors
        stage = PredictStage(truth, k=3, folds=5, seed=0)
        first = Pipeline([stage]).run(
            points, context=ExecutionContext(checkpoint_dir=tmp_path)
        )
        resumed = Pipeline([stage]).run(
            points,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        assert isinstance(resumed, float)
        assert resumed == first


class TestLayoutStage:
    def test_matches_direct_call_and_caches(self, small_graph, tmp_path):
        from repro.viz.forceatlas import force_atlas_layout

        direct = np.asarray(
            force_atlas_layout(small_graph, iterations=15, seed=4).positions
        )
        stage = LayoutStage(iterations=15, seed=4)
        positions = Pipeline([stage]).run(
            small_graph, context=ExecutionContext(checkpoint_dir=tmp_path)
        )
        assert positions.shape == (small_graph.n, 2)
        assert np.array_equal(positions, direct)

        resumed = Pipeline([stage]).execute(
            small_graph,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        assert resumed.report_for("layout").skipped is True
        assert np.array_equal(resumed.value, direct)


class TestEndToEndComposition:
    def test_walks_train_detect_chain(self, small_graph):
        """The paper's Section III flow as one pipeline."""
        pipeline = Pipeline(
            [
                WalkStage(RandomWalkConfig(walks_per_vertex=6, walk_length=20, seed=0)),
                TrainStage(TrainConfig(dim=12, epochs=4, seed=0)),
                DetectStage(3, n_init=10, seed=0),
            ]
        )
        result = pipeline.execute(small_graph)
        truth = small_graph.vertex_labels("community")
        from repro.ml.metrics import adjusted_rand_index

        assert adjusted_rand_index(np.asarray(truth), result.value) > 0.8
        # every intermediate output is addressable
        assert set(result.outputs) == {"walks", "train", "detect"}
