"""ExecutionContext: scoping, merging, checkpointing, legacy shims."""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.pipeline import ExecutionContext, FingerprintMismatch
from repro.pipeline.context import UNSET, context_from_legacy
from repro.resilience.supervisor import SupervisorConfig


class TestConstruction:
    def test_defaults_are_inert(self):
        ctx = ExecutionContext()
        assert ctx.checkpoint_dir is None
        assert ctx.resume is False
        assert ctx.workers == 1
        assert ctx.supervisor is None
        assert ctx.checkpoints() is None
        assert ctx.fingerprinted({"a": 1}) is None

    def test_checkpoint_dir_normalized_to_path(self, tmp_path):
        ctx = ExecutionContext(checkpoint_dir=str(tmp_path))
        assert isinstance(ctx.checkpoint_dir, Path)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionContext().resume = True


class TestScoping:
    def test_scoped_appends_subdirectory(self, tmp_path):
        ctx = ExecutionContext(checkpoint_dir=tmp_path, resume=True, workers=4)
        walks = ctx.scoped("walks")
        assert walks.checkpoint_dir == tmp_path / "walks"
        # everything else rides along unchanged
        assert walks.resume is True and walks.workers == 4

    def test_scoped_without_checkpointing_is_identity(self):
        ctx = ExecutionContext()
        assert ctx.scoped("walks") is ctx

    def test_with_supervisor_fills_only_when_unset(self):
        sup = SupervisorConfig(worker_deadline=1.0)
        other = SupervisorConfig(worker_deadline=9.0)
        assert ExecutionContext().with_supervisor(sup).supervisor is sup
        ctx = ExecutionContext(supervisor=sup)
        assert ctx.with_supervisor(other).supervisor is sup
        assert ctx.with_supervisor(None).supervisor is sup


class TestWorkersAndChaos:
    def test_resolve_workers(self):
        assert ExecutionContext(workers=3).resolve_workers() == 3
        assert ExecutionContext(workers=None).resolve_workers() >= 1
        assert ExecutionContext(workers=0).resolve_workers() >= 1

    def test_wrap_task_passthrough_and_hook(self):
        fn = lambda x: x  # noqa: E731
        assert ExecutionContext().wrap_task(fn) is fn
        wrapped = object()
        ctx = ExecutionContext(fault_injector=lambda f: wrapped)
        assert ctx.wrap_task(fn) is wrapped

    def test_fault_injector_excluded_from_equality(self):
        a = ExecutionContext(fault_injector=lambda f: f)
        b = ExecutionContext()
        assert a == b


class TestFingerprintedCheckpoints:
    def test_roundtrip_and_mismatch(self, tmp_path):
        ctx = ExecutionContext(checkpoint_dir=tmp_path)
        store = ctx.fingerprinted({"v": 1}, scope="s")
        assert store.load("slot") is None
        store.save("slot", {"x": np.arange(3)}, {"extra": 7})
        ckpt = store.load("slot")
        assert np.array_equal(ckpt.arrays["x"], np.arange(3))
        assert ckpt.meta["extra"] == 7

        other = ctx.fingerprinted({"v": 2}, scope="s")
        with pytest.raises(FingerprintMismatch, match="different configuration"):
            other.load("slot")
        # FingerprintMismatch stays catchable as the historical ValueError
        assert issubclass(FingerprintMismatch, ValueError)

    def test_scope_separates_directories(self, tmp_path):
        ctx = ExecutionContext(checkpoint_dir=tmp_path)
        a = ctx.fingerprinted({"v": 1}, scope="a")
        b = ctx.fingerprinted({"v": 1}, scope="b")
        a.save("slot", {"x": np.zeros(1)})
        assert b.load("slot") is None


class TestSeedTree:
    def test_seed_sequence_is_stable_and_keyed(self):
        ctx = ExecutionContext(seed=7)
        a = ctx.seed_sequence("detect")
        b = ctx.seed_sequence("detect")
        c = ctx.seed_sequence("layout")
        assert (
            np.random.default_rng(a).integers(1 << 30)
            == np.random.default_rng(b).integers(1 << 30)
        )
        assert (
            np.random.default_rng(a).integers(1 << 30)
            != np.random.default_rng(c).integers(1 << 30)
        )

    def test_spawn_seeds_count(self):
        assert len(ExecutionContext(seed=0).spawn_seeds(4)) == 4


class TestContextFromLegacy:
    def test_unset_kwargs_are_dropped(self):
        ctx = context_from_legacy(None, checkpoint_dir=UNSET, workers=UNSET)
        assert ctx == ExecutionContext()

    def test_workers_shorthand_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ctx = context_from_legacy(None, workers=4, checkpoint_dir=UNSET)
        assert ctx.workers == 4

    def test_deprecated_kwargs_warn(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="checkpoint_dir, resume"):
            ctx = context_from_legacy(
                None, checkpoint_dir=tmp_path, resume=True, workers=UNSET
            )
        assert ctx.checkpoint_dir == tmp_path and ctx.resume is True

    def test_context_plus_legacy_is_an_error(self, tmp_path):
        with pytest.raises(TypeError, match="not both"):
            context_from_legacy(
                ExecutionContext(), checkpoint_dir=tmp_path, workers=UNSET
            )

    def test_explicit_context_passes_through(self):
        ctx = ExecutionContext(workers=2)
        assert (
            context_from_legacy(ctx, checkpoint_dir=UNSET, workers=UNSET) is ctx
        )
