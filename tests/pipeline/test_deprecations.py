"""The legacy per-function runtime kwargs keep working — with a warning.

The PR that introduced ``ExecutionContext`` kept the historical
signatures of ``generate_walks``/``train_embeddings`` as thin shims.
These tests pin the compatibility contract:

* the modern call paths are completely warning-free (asserted under
  ``simplefilter("error")``);
* ``checkpoint_dir=``/``resume=``/``supervisor=`` still function but
  emit the migration ``DeprecationWarning``;
* ``workers=`` stays a silent, documented shorthand;
* mixing ``context=`` with legacy kwargs is a ``TypeError``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.core import Graph
from repro.pipeline import ExecutionContext
from repro.walks.engine import RandomWalkConfig, generate_walks


@pytest.fixture(scope="module")
def graph():
    return Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])


@pytest.fixture(scope="module")
def walk_config():
    return RandomWalkConfig(walks_per_vertex=2, walk_length=6, seed=0)


@pytest.fixture(scope="module")
def train_config():
    return TrainConfig(dim=4, epochs=1, seed=0)


class TestModernPathIsWarningFree:
    def test_generate_walks(self, graph, walk_config, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            generate_walks(graph, walk_config)
            generate_walks(graph, walk_config, workers=2)
            generate_walks(
                graph,
                walk_config,
                context=ExecutionContext(checkpoint_dir=tmp_path),
            )

    def test_train_embeddings(self, graph, walk_config, train_config, tmp_path):
        corpus = generate_walks(graph, walk_config)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            train_embeddings(corpus, train_config)
            train_embeddings(
                corpus,
                train_config,
                context=ExecutionContext(checkpoint_dir=tmp_path),
            )

    def test_v2v_fit_with_context(self, graph, tmp_path):
        from repro import V2V, V2VConfig

        cfg = V2VConfig(dim=4, epochs=1, walks_per_vertex=2, walk_length=6, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            V2V(cfg).fit(graph, context=ExecutionContext(checkpoint_dir=tmp_path))


class TestLegacyKwargsWarnButWork:
    def test_generate_walks_checkpoint_dir(self, graph, walk_config, tmp_path):
        with pytest.warns(DeprecationWarning, match="checkpoint_dir"):
            corpus = generate_walks(graph, walk_config, checkpoint_dir=tmp_path)
        assert (tmp_path / "walks-0000.ckpt.npz").exists()
        with pytest.warns(DeprecationWarning, match="checkpoint_dir, resume"):
            resumed = generate_walks(
                graph, walk_config, checkpoint_dir=tmp_path, resume=True
            )
        assert np.array_equal(corpus.walks, resumed.walks)

    def test_generate_walks_supervisor(self, graph, walk_config):
        from repro.resilience.supervisor import SupervisorConfig

        with pytest.warns(DeprecationWarning, match="supervisor"):
            generate_walks(
                graph,
                walk_config,
                workers=2,
                supervisor=SupervisorConfig(worker_deadline=30.0),
            )

    def test_train_embeddings_checkpoint_dir(
        self, graph, walk_config, train_config, tmp_path
    ):
        corpus = generate_walks(graph, walk_config)
        with pytest.warns(DeprecationWarning, match="checkpoint_dir"):
            first = train_embeddings(corpus, train_config, checkpoint_dir=tmp_path)
        assert (tmp_path / "trainer.ckpt.npz").exists()
        with pytest.warns(DeprecationWarning, match="checkpoint_dir, resume"):
            resumed = train_embeddings(
                corpus, train_config, checkpoint_dir=tmp_path, resume=True
            )
        assert np.array_equal(first.vectors, resumed.vectors)


class TestConflictingSettings:
    def test_generate_walks_context_plus_legacy(self, graph, walk_config, tmp_path):
        with pytest.raises(TypeError, match="not both"):
            generate_walks(
                graph,
                walk_config,
                context=ExecutionContext(),
                checkpoint_dir=tmp_path,
            )

    def test_train_embeddings_context_plus_legacy(
        self, graph, walk_config, train_config, tmp_path
    ):
        corpus = generate_walks(graph, walk_config)
        with pytest.raises(TypeError, match="not both"):
            train_embeddings(
                corpus,
                train_config,
                context=ExecutionContext(),
                resume=True,
            )

    def test_v2v_fit_context_plus_kwargs(self, graph, tmp_path):
        from repro import V2V, V2VConfig

        cfg = V2VConfig(dim=4, epochs=1, walks_per_vertex=2, walk_length=6, seed=0)
        with pytest.raises(TypeError, match="not both"):
            V2V(cfg).fit(
                graph, context=ExecutionContext(), checkpoint_dir=tmp_path
            )
