"""Smoke tests: the example scripts must run end-to-end.

Only the fast examples run here (the heavier sweeps are exercised by the
benchmark suite); each is executed as a subprocess from a temp cwd so
any files it writes stay out of the repo.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def run_example(name: str, tmp_path) -> str:
    # The examples import `repro` from the source tree; the subprocess
    # does not inherit pytest's import path, so put src/ on PYTHONPATH.
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example("quickstart.py", tmp_path)
        assert "nearest neighbors" in out
        assert "legend:" in out

    def test_temporal_walks(self, tmp_path):
        out = run_example("temporal_walks.py", tmp_path)
        assert "request-path fidelity" in out
        # The windowed temporal walk must reach perfect fidelity.
        windowed = [l for l in out.splitlines() if "window 1.5" in l][0]
        assert windowed.strip().endswith("1.000")

    def test_link_prediction(self, tmp_path):
        out = run_example("link_prediction.py", tmp_path)
        assert "ROC AUC" in out
        hadamard = [l for l in out.splitlines() if l.startswith("hadamard")][0]
        assert float(hadamard.split()[-1]) > 0.7

    def test_karate_club(self, tmp_path):
        out = run_example("karate_club.py", tmp_path)
        assert "ARI vs factions" in out
        assert "legend:" in out

    def test_flight_visualization_writes_csv(self, tmp_path):
        out = run_example("flight_visualization.py", tmp_path)
        assert "continent separation" in out
        assert (tmp_path / "fig8a_openflights_pca2d.csv").exists()
        assert (tmp_path / "fig8b_openflights_pca3d.csv").exists()
