"""Tests for the command-line interface (run in-process via cli.main)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def small_edge_list(tmp_path):
    """A tiny benchmark graph on disk plus its ground-truth labels."""
    graph_path = tmp_path / "graph.txt"
    labels_path = tmp_path / "labels.txt"
    rc = main(
        [
            "generate",
            "-o", str(graph_path),
            "--kind", "communities",
            "--n", "60",
            "--groups", "3",
            "--alpha", "0.6",
            "--inter-edges", "8",
            "--labels", str(labels_path),
            "--seed", "0",
        ]
    )
    assert rc == 0
    return graph_path, labels_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_embed_defaults(self):
        args = build_parser().parse_args(["embed", "g.txt", "-o", "v.npz"])
        assert args.dim == 50 and args.window == 5 and args.mode == "uniform"


class TestGenerate:
    def test_writes_graph_and_labels(self, small_edge_list):
        graph_path, labels_path = small_edge_list
        assert graph_path.exists()
        labels = labels_path.read_text().strip().split("\n")
        assert len(labels) == 60

    def test_flights_kind(self, tmp_path):
        out = tmp_path / "flights.txt"
        rc = main(
            ["generate", "-o", str(out), "--kind", "flights", "--n", "60", "--seed", "1"]
        )
        assert rc == 0
        assert out.exists()


class TestEmbed:
    def test_embed_writes_npz(self, small_edge_list, tmp_path, capsys):
        graph_path, _ = small_edge_list
        out = tmp_path / "vectors.npz"
        rc = main(
            [
                "embed", str(graph_path), "-o", str(out),
                "--dim", "8", "--walks", "4", "--length", "15",
                "--epochs", "2", "--seed", "0",
            ]
        )
        assert rc == 0
        with np.load(out) as data:
            assert data["vectors"].shape == (60, 8)
        assert "embedded 60 vertices" in capsys.readouterr().out

    def test_checkpoint_dir_and_resume(self, small_edge_list, tmp_path, capsys):
        graph_path, _ = small_edge_list
        ckpt = tmp_path / "ckpt"
        base_args = [
            "embed", str(graph_path),
            "--dim", "8", "--walks", "4", "--length", "15",
            "--epochs", "2", "--seed", "0",
            "--checkpoint-dir", str(ckpt),
        ]
        out1 = tmp_path / "v1.npz"
        assert main(base_args + ["-o", str(out1)]) == 0
        assert (ckpt / "trainer.ckpt.npz").exists()
        assert list((ckpt / "walks").glob("walks-*.ckpt.npz"))
        # Resuming over the finished checkpoints reproduces the vectors.
        out2 = tmp_path / "v2.npz"
        assert main(base_args + ["-o", str(out2), "--resume"]) == 0
        with np.load(out1) as a, np.load(out2) as b:
            np.testing.assert_array_equal(a["vectors"], b["vectors"])

    def test_on_error_skip_loads_corrupt_edge_list(self, tmp_path, capsys):
        graph_path = tmp_path / "corrupt.txt"
        lines = ["0 1", "garbage line", "1 2", "2 3", "3 0", "0 2", "1 3"]
        graph_path.write_text("\n".join(lines) + "\n")
        out = tmp_path / "v.npz"
        args = [
            "embed", str(graph_path), "-o", str(out),
            "--dim", "4", "--walks", "2", "--length", "8", "--epochs", "1",
        ]
        assert main(args + ["--on-error", "skip"]) == 0
        with np.load(out) as data:
            assert data["vectors"].shape == (4, 4)
        # collect mode reports the dropped line as a structured warning
        # on stderr (stdout stays reserved for the command result)
        assert main(args + ["--on-error", "collect"]) == 0
        captured = capsys.readouterr()
        assert "io.malformed_lines" in captured.err
        assert "dropped=1" in captured.err
        assert "malformed" not in captured.out
        # strict mode refuses
        with pytest.raises(ValueError):
            main(args + ["--on-error", "strict"])

    def test_node2vec_mode(self, small_edge_list, tmp_path):
        graph_path, _ = small_edge_list
        out = tmp_path / "v.npz"
        rc = main(
            [
                "embed", str(graph_path), "-o", str(out),
                "--dim", "4", "--walks", "2", "--length", "10",
                "--epochs", "1", "--mode", "node2vec", "--p", "0.5", "--q", "2.0",
            ]
        )
        assert rc == 0


class TestDetect:
    @pytest.mark.parametrize("method", ["v2v", "cnm", "louvain"])
    def test_methods_write_tsv(self, small_edge_list, tmp_path, method):
        graph_path, _ = small_edge_list
        out = tmp_path / f"{method}.tsv"
        argv = [
            "detect", str(graph_path), "-k", "3", "-o", str(out),
            "--method", method, "--dim", "8", "--walks", "4",
            "--length", "15", "--epochs", "2", "--restarts", "5",
        ]
        assert main(argv) == 0
        lines = out.read_text().strip().split("\n")
        assert lines[0] == "vertex\tcommunity"
        assert len(lines) == 61

    def test_v2v_detect_quality(self, small_edge_list, tmp_path):
        graph_path, labels_path = small_edge_list
        out = tmp_path / "comm.tsv"
        main(
            [
                "detect", str(graph_path), "-k", "3", "-o", str(out),
                "--dim", "12", "--walks", "6", "--length", "20",
                "--epochs", "4", "--restarts", "10", "--seed", "0",
            ]
        )
        pred = np.asarray(
            [int(l.split("\t")[1]) for l in out.read_text().strip().split("\n")[1:]]
        )
        truth = np.asarray(
            [int(x) for x in labels_path.read_text().strip().split("\n")]
        )
        from repro.ml.metrics import adjusted_rand_index

        assert adjusted_rand_index(truth, pred) > 0.8


class TestPredict:
    def test_cross_validation_output(self, small_edge_list, tmp_path, capsys):
        graph_path, labels_path = small_edge_list
        vec_path = tmp_path / "v.npz"
        main(
            [
                "embed", str(graph_path), "-o", str(vec_path),
                "--dim", "12", "--walks", "6", "--length", "20",
                "--epochs", "4", "--seed", "0",
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "predict", str(vec_path), str(labels_path),
                "-k", "3", "--folds", "5", "--seed", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        acc = float(out.strip().rsplit(" ", 1)[1])
        assert acc > 0.6

    def test_label_count_mismatch(self, small_edge_list, tmp_path, capsys):
        graph_path, _ = small_edge_list
        vec_path = tmp_path / "v.npz"
        main(
            [
                "embed", str(graph_path), "-o", str(vec_path),
                "--dim", "4", "--walks", "2", "--length", "8", "--epochs", "1",
            ]
        )
        bad_labels = tmp_path / "bad.txt"
        bad_labels.write_text("a\nb\n")
        rc = main(["predict", str(vec_path), str(bad_labels)])
        assert rc == 2


class TestLinkPred:
    def test_reports_auc(self, small_edge_list, capsys):
        graph_path, _ = small_edge_list
        rc = main(
            [
                "linkpred", str(graph_path),
                "--dim", "12", "--walks", "6", "--length", "20",
                "--epochs", "4", "--seed", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ROC AUC" in out
        auc = float(out.split("ROC AUC")[1].split()[0])
        assert 0.5 < auc <= 1.0

    def test_operator_choice(self, small_edge_list, capsys):
        graph_path, _ = small_edge_list
        rc = main(
            [
                "linkpred", str(graph_path), "--operator", "l1",
                "--dim", "8", "--walks", "4", "--length", "15",
                "--epochs", "2", "--seed", "0",
            ]
        )
        assert rc == 0
        assert "l1" in capsys.readouterr().out


class TestLayout:
    def test_writes_csv(self, small_edge_list, tmp_path):
        graph_path, _ = small_edge_list
        out = tmp_path / "layout.csv"
        rc = main(
            ["layout", str(graph_path), "-o", str(out), "--iterations", "30"]
        )
        assert rc == 0
        lines = out.read_text().strip().split("\n")
        assert lines[0] == "vertex,x,y"
        assert len(lines) == 61
