"""Tests for the link-prediction task."""

import numpy as np
import pytest

from repro.core.model import V2VConfig
from repro.graph.core import Graph
from repro.graph.generators import planted_partition
from repro.tasks.link_prediction import (
    EDGE_OPERATORS,
    auc_score,
    edge_features,
    link_prediction_experiment,
    train_test_edge_split,
)


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=150, groups=5, alpha=0.4, inter_edges=30, seed=0)


class TestEdgeFeatures:
    def test_operators_shapes(self, rng):
        vectors = rng.random((10, 6))
        pairs = np.asarray([[0, 1], [2, 3]])
        for op in EDGE_OPERATORS:
            out = edge_features(vectors, pairs, operator=op)
            assert out.shape == (2, 6)

    def test_hadamard_values(self):
        vectors = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        out = edge_features(vectors, np.asarray([[0, 1]]), operator="hadamard")
        np.testing.assert_allclose(out, [[3.0, 8.0]])

    def test_l1_symmetric(self, rng):
        vectors = rng.random((5, 4))
        a = edge_features(vectors, np.asarray([[0, 1]]), operator="l1")
        b = edge_features(vectors, np.asarray([[1, 0]]), operator="l1")
        np.testing.assert_allclose(a, b)

    def test_validation(self, rng):
        vectors = rng.random((5, 4))
        with pytest.raises(ValueError):
            edge_features(vectors, np.asarray([[0, 1]]), operator="bogus")
        with pytest.raises(ValueError):
            edge_features(vectors, np.asarray([0, 1]))


class TestEdgeSplit:
    def test_split_sizes(self, graph):
        residual, train_pos, train_neg, test_pos, test_neg = train_test_edge_split(
            graph, 0.3, seed=0
        )
        m = graph.num_edges
        assert len(test_pos) == round(0.3 * m)
        assert len(train_pos) == m - len(test_pos)
        assert len(test_neg) == len(test_pos)
        assert len(train_neg) == len(train_pos)
        assert residual.num_edges == len(train_pos)

    def test_negatives_are_non_edges(self, graph):
        _res, _tp, train_neg, _sp, test_neg = train_test_edge_split(
            graph, 0.3, seed=0
        )
        existing = {
            (int(min(u, v)), int(max(u, v)))
            for u, v in zip(graph.edge_list.src, graph.edge_list.dst)
        }
        for u, v in np.vstack([train_neg, test_neg]):
            assert (int(min(u, v)), int(max(u, v))) not in existing

    def test_negatives_disjoint(self, graph):
        _res, _tp, train_neg, _sp, test_neg = train_test_edge_split(
            graph, 0.3, seed=0
        )
        canon = lambda arr: {
            (int(min(u, v)), int(max(u, v))) for u, v in arr
        }
        assert not canon(train_neg) & canon(test_neg)

    def test_labels_survive_split(self, graph):
        residual, *_ = train_test_edge_split(graph, 0.2, seed=0)
        assert "community" in residual.label_names

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            train_test_edge_split(graph, 0.0)
        with pytest.raises(ValueError):
            train_test_edge_split(graph, 1.0)
        with pytest.raises(ValueError):
            train_test_edge_split(Graph(3, [(0, 1)]), 0.5)


class TestAUC:
    def test_perfect_separation(self):
        labels = np.asarray([0, 0, 1, 1])
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 1.0

    def test_inverted(self):
        labels = np.asarray([1, 1, 0, 0])
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 0.0

    def test_random_half(self, rng):
        labels = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert abs(auc_score(labels, scores) - 0.5) < 0.05

    def test_ties_half_credit(self):
        labels = np.asarray([0, 1, 0, 1])
        scores = np.asarray([0.5, 0.5, 0.5, 0.5])
        assert auc_score(labels, scores) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            auc_score(np.ones(3), np.ones(3))  # no negatives
        with pytest.raises(ValueError):
            auc_score(np.zeros(2), np.zeros(3))


class TestExperiment:
    def test_auc_beats_chance(self, graph):
        cfg = V2VConfig(
            dim=24, walks_per_vertex=6, walk_length=25, epochs=5, seed=0
        )
        result = link_prediction_experiment(
            graph, config=cfg, operator="hadamard", seed=0
        )
        assert result.auc > 0.75
        assert result.operator == "hadamard"
        assert result.test_edges + result.train_edges == graph.num_edges

    def test_result_reproducible(self, graph):
        cfg = V2VConfig(dim=16, walks_per_vertex=4, walk_length=20, epochs=3, seed=0)
        a = link_prediction_experiment(graph, config=cfg, seed=1)
        b = link_prediction_experiment(graph, config=cfg, seed=1)
        assert a.auc == b.auc
