"""Scaled-down checks of the paper's qualitative claims.

Full-scale reproductions live in benchmarks/; these tests assert the same
*shapes* at a size small enough for the unit-test suite:

- Figs 5/6: V2V community precision/recall increase with α.
- Table I: clustering V2V vectors is orders of magnitude faster than
  running the graph-native algorithms.
- Fig 7 mechanism: training converges in fewer epochs when structure is
  strong (asserted in tests/core/test_trainer.py).
- Fig 8: continents separate in PCA space of a flight-route embedding.
"""

import time

import numpy as np
import pytest

from repro import V2V, V2VConfig
from repro.community import cnm_communities, girvan_newman_communities
from repro.datasets.openflights import OpenFlightsSpec, synthetic_openflights
from repro.graph.generators import planted_partition
from repro.ml import KMeans, pairwise_precision_recall
from repro.viz.projection import pca_projection, separation_ratio

FAST = dict(walks_per_vertex=6, walk_length=25, epochs=5, early_stop=False)


def detect(graph, k, dim=16, seed=0):
    model = V2V(V2VConfig(dim=dim, seed=seed, **FAST)).fit(graph)
    labels = KMeans(k, n_init=10, seed=seed).fit_predict(model.vectors)
    return labels


class TestAccuracyVsAlpha:
    def test_precision_recall_increase_with_alpha(self):
        scores = {}
        for alpha in (0.1, 0.6):
            g = planted_partition(
                n=150, groups=5, alpha=alpha, inter_edges=50, seed=1
            )
            labels = detect(g, 5)
            truth = g.vertex_labels("community")
            p, r = pairwise_precision_recall(truth, labels)
            scores[alpha] = (p, r)
        assert scores[0.6][0] >= scores[0.1][0]
        assert scores[0.6][1] >= scores[0.1][1] - 0.02


class TestRuntimeComparison:
    def test_clustering_faster_than_graph_algorithms(self):
        """Table I shape: k-means on fitted vectors is far cheaper than
        CNM or Girvan–Newman on the same graph."""
        g = planted_partition(n=150, groups=5, alpha=0.5, inter_edges=25, seed=0)
        model = V2V(V2VConfig(dim=10, seed=0, **FAST)).fit(g)

        t0 = time.perf_counter()
        KMeans(5, n_init=10, seed=0).fit(model.vectors)
        cluster_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        cnm_communities(g)
        cnm_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        girvan_newman_communities(
            g, target_communities=5, sample_sources=30, seed=0, max_removals=60
        )
        gn_time = time.perf_counter() - t0

        assert cluster_time < cnm_time
        assert cluster_time < gn_time

    def test_graph_algorithms_match_ground_truth(self):
        """Table I: CNM and GN recover the planted partition (they hit
        1.000/1.000 in the paper)."""
        g = planted_partition(n=100, groups=4, alpha=0.7, inter_edges=15, seed=0)
        truth = g.vertex_labels("community")
        p, r = pairwise_precision_recall(truth, cnm_communities(g))
        assert p > 0.95 and r > 0.95


class TestOpenFlightsShape:
    def test_continent_separation_in_pca(self):
        """Fig 8 shape: continents form separated groups in the PCA
        projection of the embedding, without geographic features."""
        g = synthetic_openflights(OpenFlightsSpec(num_airports=250, seed=2))
        model = V2V(V2VConfig(dim=24, seed=0, **FAST)).fit(g)
        proj = pca_projection(model.vectors, 2)
        continents = g.vertex_labels("continent")
        assert separation_ratio(proj, continents) > 0.8
