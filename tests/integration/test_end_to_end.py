"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro import V2V, V2VConfig, WalkMode
from repro.community import (
    V2VCommunityDetector,
    cnm_communities,
    girvan_newman_communities,
)
from repro.datasets.openflights import OpenFlightsSpec, synthetic_openflights
from repro.graph.generators import planted_partition
from repro.graph.io import load_graph, save_graph
from repro.ml import (
    KNNClassifier,
    PCA,
    cross_validate_knn,
    pairwise_precision_recall,
    silhouette_score,
)
from repro.viz.projection import pca_projection, separation_ratio


@pytest.fixture(scope="module")
def community_graph():
    return planted_partition(n=150, groups=5, alpha=0.5, inter_edges=25, seed=3)


@pytest.fixture(scope="module")
def community_model(community_graph):
    cfg = V2VConfig(
        dim=24, walks_per_vertex=8, walk_length=30, epochs=6, seed=0,
        early_stop=False,
    )
    return V2V(cfg).fit(community_graph)


class TestCommunityPipeline:
    def test_v2v_beats_no_structure(self, community_graph, community_model):
        truth = community_graph.vertex_labels("community")
        det = V2VCommunityDetector(5, n_init=20, config=V2VConfig(dim=24, seed=0))
        result = det.detect_with_model(community_model)
        p, r = pairwise_precision_recall(truth, result.membership)
        assert p > 0.85 and r > 0.85

    def test_v2v_vs_graph_algorithms_agree(self, community_graph, community_model):
        truth = community_graph.vertex_labels("community")
        det = V2VCommunityDetector(5, n_init=20, config=V2VConfig(dim=24, seed=0))
        v2v_labels = det.detect_with_model(community_model).membership
        cnm_labels = cnm_communities(community_graph)
        p_v, r_v = pairwise_precision_recall(truth, v2v_labels)
        p_c, r_c = pairwise_precision_recall(truth, cnm_labels)
        # Graph-native should match/beat V2V (paper's accuracy finding).
        assert p_c >= p_v - 0.05
        assert r_c >= r_v - 0.05

    def test_embedding_space_clusters_visible_in_pca(self, community_graph, community_model):
        truth = community_graph.vertex_labels("community")
        proj = pca_projection(community_model.vectors, 2)
        assert separation_ratio(proj, truth) > 1.0


class TestVisualizationPipeline:
    def test_pca_2d_and_3d(self, community_model):
        for k in (2, 3):
            z = PCA(k).fit_transform(community_model.vectors)
            assert z.shape == (150, k)


class TestFeaturePredictionPipeline:
    @pytest.fixture(scope="class")
    def flights_model(self):
        g = synthetic_openflights(OpenFlightsSpec(num_airports=300, seed=1))
        cfg = V2VConfig(
            dim=32, walks_per_vertex=8, walk_length=30, epochs=6, seed=0,
            early_stop=False,
        )
        return g, V2V(cfg).fit(g)

    def test_continent_prediction_beats_chance(self, flights_model):
        g, model = flights_model
        continents = g.vertex_labels("continent")
        acc = cross_validate_knn(
            model.vectors, continents, k=3, n_splits=5, seed=0
        )
        chance = np.bincount(
            np.unique(continents, return_inverse=True)[1]
        ).max() / g.n
        assert acc > chance + 0.2

    def test_continent_clusters_in_embedding(self, flights_model):
        g, model = flights_model
        continents = g.vertex_labels("continent")
        score = silhouette_score(model.vectors, continents)
        assert score > 0.0

    def test_knn_on_holdout(self, flights_model):
        g, model = flights_model
        continents = g.vertex_labels("continent")
        rng = np.random.default_rng(0)
        idx = rng.permutation(g.n)
        train, test = idx[:240], idx[240:]
        clf = KNNClassifier(k=3).fit(model.vectors[train], continents[train])
        assert clf.score(model.vectors[test], continents[test]) > 0.5


class TestConstrainedWalkPipelines:
    def test_directed_embedding(self):
        g = synthetic_openflights(OpenFlightsSpec(num_airports=120, seed=0))
        cfg = V2VConfig(dim=8, walks_per_vertex=4, walk_length=15, epochs=2, seed=0)
        model = V2V(cfg).fit(g)
        assert model.vectors.shape == (120, 8)

    def test_weighted_walk_embedding(self):
        g = planted_partition(n=60, groups=3, alpha=0.5, inter_edges=10, seed=0)
        # Re-build with weights: intra edges heavy.
        from repro.graph.core import EdgeList, Graph

        e = g.edge_list
        truth = g.vertex_labels("community")
        w = np.where(truth[e.src] == truth[e.dst], 5.0, 1.0)
        gw = Graph(60, EdgeList(e.src, e.dst, w))
        cfg = V2VConfig(
            dim=8, walks_per_vertex=4, walk_length=15, epochs=2, seed=0,
            walk_mode=WalkMode.WEIGHTED,
        )
        model = V2V(cfg).fit(gw)
        assert model.vectors.shape == (60, 8)

    def test_temporal_walk_embedding(self, rng):
        # Random temporal graph: edges with random timestamps.
        n = 40
        src = rng.integers(0, n, 300)
        dst = rng.integers(0, n, 300)
        keep = src != dst
        from repro.graph.core import EdgeList, Graph

        g = Graph(
            n,
            EdgeList(
                src[keep],
                dst[keep],
                np.ones(int(keep.sum())),
                rng.random(int(keep.sum())) * 100,
            ),
            directed=True,
        )
        cfg = V2VConfig(
            dim=8, walks_per_vertex=4, walk_length=10, epochs=2, seed=0,
            walk_mode=WalkMode.TEMPORAL, time_window=50.0,
        )
        model = V2V(cfg).fit(g)
        assert model.vectors.shape == (n, 8)


class TestPersistenceAcrossPipeline:
    def test_graph_and_model_roundtrip(self, tmp_path, community_graph, community_model):
        save_graph(community_graph, tmp_path / "g.npz")
        community_model.save(tmp_path / "m.npz")
        g = load_graph(tmp_path / "g.npz")
        m = V2V.load(tmp_path / "m.npz")
        det = V2VCommunityDetector(5, n_init=10, config=V2VConfig(seed=0))
        labels = det.detect_with_model(m).membership
        truth = g.vertex_labels("community")
        p, _ = pairwise_precision_recall(truth, labels)
        assert p > 0.8
