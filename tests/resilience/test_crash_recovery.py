"""SIGKILL-mid-checkpoint recovery: sweep the wreckage, resume bitwise.

A real ``python -m repro embed`` subprocess is hard-killed the moment
its first trainer checkpoint is durable — no signal handler, no atexit,
exactly like the OOM killer. The next registry interaction must then:

- fold the dead run's ``running`` journal record to ``orphaned``,
- remove its torn ``*.tmp.<pid>`` files and ``repro-<pid>-*``
  /dev/shm segments,
- and ``repro runs resume --latest`` must replay the recorded argv to
  an embedding bitwise-identical to an uninterrupted reference run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.graph.generators import planted_partition
from repro.graph.io import write_edge_list
from repro.parallel.shm import SHM_MOUNT
from repro.resilience.registry import RunRegistry

pytestmark = pytest.mark.chaos


def _env():
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    return env


def _embed_argv(edges, out, ckpt):
    return [
        "embed", str(edges),
        "--dim", "12", "--walks", "4", "--length", "20",
        "--epochs", "16", "--seed", "3", "--log-level", "error",
        "-o", str(out), "--checkpoint-dir", str(ckpt),
    ]


def test_sigkill_mid_checkpoint_sweeps_and_resumes_bitwise(tmp_path):
    graph = planted_partition(n=81, groups=3, alpha=0.7, inter_edges=10, seed=0)
    edges = tmp_path / "graph.edges"
    write_edge_list(graph, edges)
    env = _env()

    ref_out = tmp_path / "ref.npz"
    rc = subprocess.run(
        [sys.executable, "-m", "repro"]
        + _embed_argv(edges, ref_out, tmp_path / "ref_ckpt"),
        env=env,
    ).returncode
    assert rc == 0, "reference run failed"

    ckpt = tmp_path / "ckpt"
    chaos_out = tmp_path / "chaos.npz"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + _embed_argv(edges, chaos_out, ckpt),
        env=env,
    )
    trainer_ckpt = ckpt / "trainer.ckpt.npz"
    give_up = time.monotonic() + 120
    while (
        not trainer_ckpt.exists()
        and proc.poll() is None
        and time.monotonic() < give_up
    ):
        time.sleep(0.01)
    assert proc.poll() is None, (
        f"run finished (exit {proc.returncode}) before SIGKILL "
        "could land mid-training"
    )
    proc.send_signal(signal.SIGKILL)
    assert proc.wait(timeout=60) == -signal.SIGKILL

    # Recreate the full crash debris deterministically: a torn tmp file
    # and an orphaned shm segment owned by the (now certainly dead) pid.
    torn_tmp = ckpt / f"trainer.ckpt.npz.tmp.{proc.pid}"
    torn_tmp.write_bytes(b"half a checkpoint")
    shm_mount = Path(SHM_MOUNT)
    orphan_seg = None
    if shm_mount.is_dir():
        orphan_seg = shm_mount / f"repro-{proc.pid}-feedface"
        orphan_seg.write_bytes(b"")

    try:
        # The killed run never journaled a terminal status.
        stale = [r for r in RunRegistry(ckpt).runs() if r.pid == proc.pid]
        assert stale and stale[0].status == "running"

        listing = subprocess.run(
            [sys.executable, "-m", "repro", "runs", "list", str(ckpt)],
            env=env, capture_output=True, text=True,
        )
        assert listing.returncode == 0, listing.stderr
        assert "orphaned" in listing.stdout
        assert "swept:" in listing.stdout

        # The startup sweep reclaimed every trace of the dead run.
        assert not torn_tmp.exists()
        if orphan_seg is not None:
            assert not orphan_seg.exists()

        rc = subprocess.run(
            [sys.executable, "-m", "repro", "runs", "resume", str(ckpt),
             "--latest"],
            env=env,
        ).returncode
        assert rc == 0, "resume replay failed"
    finally:
        if orphan_seg is not None:
            orphan_seg.unlink(missing_ok=True)

    with np.load(ref_out) as ref, np.load(chaos_out) as res:
        np.testing.assert_array_equal(ref["vectors"], res["vectors"])

    # Terminal registry state: the orphan stays orphaned, the resumed
    # run completed, and nothing torn survives anywhere in the tree.
    runs = RunRegistry(ckpt).runs()
    by_pid = {r.pid: r for r in runs}
    assert by_pid[proc.pid].status == "orphaned"
    assert any(r.status == "completed" for r in runs)
    assert not [p for p in ckpt.rglob("*") if ".tmp." in p.name]
