"""Resource guard: budgets, preflight, degradation ladder, watchdog.

Everything here runs against the process-wide ladder singleton, so an
autouse fixture resets it around every test — level 0 is the invariant
state the rest of the suite relies on.
"""

import time

import pytest

from repro.obs.manifest import load_manifest
from repro.obs.recorder import ObsConfig, Recorder, session, use
from repro.pipeline import ExecutionContext, Pipeline
from repro.pipeline.stage import PipelineStage
from repro.resilience.guard import (
    DEGRADE_FRACTION,
    LEVEL_CANCEL,
    LEVEL_POOL,
    LEVEL_WAVE,
    LEVEL_WORKERS,
    MIN_FREE_BYTES,
    BudgetExceeded,
    PressureWatchdog,
    ResourceBudget,
    clamp_wave,
    effective_workers,
    estimate_footprint,
    format_size,
    guard_state,
    parse_size,
    pool_allowed,
    preflight,
    reset_guard,
)


@pytest.fixture(autouse=True)
def clean_ladder():
    reset_guard()
    yield
    reset_guard()


class TestParseSize:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("2G", 2 * 1024**3),
            ("512M", 512 * 1024**2),
            ("1048576", 1048576),
            ("1.5K", 1536),
            ("2GiB", 2 * 1024**3),
            ("2gb", 2 * 1024**3),
            ("3T", 3 * 1024**4),
            (" 16 M ", 16 * 1024**2),
        ],
    )
    def test_accepts_human_sizes(self, text, expected):
        assert parse_size(text) == expected

    def test_accepts_raw_numbers(self):
        assert parse_size(4096) == 4096
        assert parse_size(1.5) == 1

    @pytest.mark.parametrize("bad", ["abc", "-5M", "", "M", "1Q"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            parse_size(0)
        with pytest.raises(ValueError):
            parse_size("0")

    def test_format_round_trip_is_readable(self):
        assert format_size(2 * 1024**3) == "2.0G"
        assert format_size(1536) == "1.5K"


class TestResourceBudget:
    def test_unarmed_by_default(self):
        assert not ResourceBudget().armed

    def test_armed_when_any_limit_set(self):
        assert ResourceBudget(memory_bytes=1).armed
        assert ResourceBudget(disk_bytes=1).armed

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"memory_bytes": 0},
            {"memory_bytes": -1},
            {"disk_bytes": 0},
            {"interval": 0.0},
        ],
    )
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(ValueError):
            ResourceBudget(**kwargs)


class _FakeGraph:
    n = 1000
    num_edges = 5000


class _FakeWalkConfig:
    walks_per_vertex = 10
    walk_length = 80


class _FakeTrainConfig:
    dim = 50
    window = 5
    workers = 4


class _Stage:
    def __init__(self, name, config):
        self.name = name
        self.config = config


WALK_STAGE = _Stage("walk", _FakeWalkConfig())
TRAIN_STAGE = _Stage("train", _FakeTrainConfig())


class TestEstimateFootprint:
    def test_graph_term_scales_with_csr_size(self):
        fp = estimate_footprint([], _FakeGraph())
        assert fp.breakdown["graph"] == (1000 + 2 * 5000) * 8
        assert fp.rss_bytes == fp.breakdown["graph"]
        assert fp.shm_bytes == 0

    def test_walk_stage_adds_corpus_and_disk(self):
        fp = estimate_footprint([WALK_STAGE], _FakeGraph())
        tokens = 1000 * 10 * 80
        assert fp.breakdown["walk_corpus"] == tokens * 8 * 2
        assert fp.disk_bytes > 0

    def test_multi_worker_training_needs_shm(self):
        fp = estimate_footprint([WALK_STAGE, TRAIN_STAGE], _FakeGraph())
        assert fp.shm_bytes > 0
        assert fp.breakdown["hogwild_shm"] == (
            fp.breakdown["train_weights"] + fp.breakdown["train_examples"]
        )

    def test_single_worker_training_needs_no_shm(self):
        class SerialTrain(_FakeTrainConfig):
            workers = 1

        fp = estimate_footprint(
            [WALK_STAGE, _Stage("train", SerialTrain())], _FakeGraph()
        )
        assert fp.shm_bytes == 0
        assert "hogwild_shm" not in fp.breakdown

    def test_as_dict_is_json_shaped(self):
        d = estimate_footprint([WALK_STAGE], _FakeGraph()).as_dict()
        assert set(d) == {"rss_bytes", "shm_bytes", "disk_bytes", "breakdown"}


def _ctx(workers=4, **budget_kwargs):
    return ExecutionContext(
        workers=workers, budget=ResourceBudget(**budget_kwargs)
    )


STAGES = [WALK_STAGE, TRAIN_STAGE]


class TestPreflight:
    def test_no_budget_is_a_passthrough(self):
        ctx = ExecutionContext(workers=4)
        assert preflight(ctx, STAGES, _FakeGraph()) is ctx

    def test_unarmed_budget_is_a_passthrough(self):
        ctx = ExecutionContext(workers=4, budget=ResourceBudget())
        assert preflight(ctx, STAGES, _FakeGraph()) is ctx

    def test_roomy_budget_passes_unchanged(self):
        ctx = _ctx(memory_bytes=64 * 1024**3)
        assert preflight(ctx, STAGES, _FakeGraph()) is ctx

    def test_tight_memory_degrades_workers_to_one(self):
        # The full footprint (~155M with shm slabs) overruns 100M, but
        # dropping the Hogwild slabs fits — preflight shrinks the run
        # instead of refusing it.
        fp = estimate_footprint(STAGES, _FakeGraph(), workers=4)
        budget = fp.rss_bytes - fp.shm_bytes // 2
        assert fp.rss_bytes > budget > fp.rss_bytes - fp.shm_bytes
        degraded = preflight(_ctx(memory_bytes=budget), STAGES, _FakeGraph())
        assert degraded.workers == 1

    def test_strict_budget_raises_instead_of_degrading(self):
        fp = estimate_footprint(STAGES, _FakeGraph(), workers=4)
        budget = fp.rss_bytes - fp.shm_bytes // 2
        with pytest.raises(BudgetExceeded) as err:
            preflight(
                _ctx(memory_bytes=budget, auto_degrade=False),
                STAGES,
                _FakeGraph(),
            )
        assert err.value.resource == "memory"
        assert err.value.needed == fp.rss_bytes

    def test_hopeless_memory_budget_raises_even_with_degrade(self):
        with pytest.raises(BudgetExceeded):
            preflight(_ctx(memory_bytes=1024), STAGES, _FakeGraph())

    def test_disk_budget_overrun_raises(self):
        with pytest.raises(BudgetExceeded) as err:
            preflight(_ctx(disk_bytes=1024), STAGES, _FakeGraph())
        assert err.value.resource == "disk"

    def test_degradation_is_counted(self):
        fp = estimate_footprint(STAGES, _FakeGraph(), workers=4)
        budget = fp.rss_bytes - fp.shm_bytes // 2
        with use(Recorder()) as rec:
            preflight(_ctx(memory_bytes=budget), STAGES, _FakeGraph())
            assert rec.registry.snapshot()["counters"]["guard.degradations"] == 1


class TestLadder:
    def test_level_zero_is_transparent(self):
        assert clamp_wave(8) == 8
        assert pool_allowed()
        assert effective_workers(4) == 4

    def test_wave_rung_serializes_chunk_scheduling(self):
        guard_state().escalate("test")
        assert guard_state().level == LEVEL_WAVE
        assert clamp_wave(8) == 1
        # Pool and workers untouched at this rung.
        assert pool_allowed()
        assert effective_workers(4) == 4

    def test_pool_rung_disables_persistent_pool(self):
        guard_state().escalate("test", to_level=LEVEL_POOL)
        assert not pool_allowed()

    def test_worker_rung_halves_map_concurrency(self):
        guard_state().escalate("test", to_level=LEVEL_WORKERS)
        assert effective_workers(4) == 2
        assert effective_workers(2) == 1
        # Serial maps cannot be halved further.
        assert effective_workers(1) == 1

    def test_cancel_rung_invokes_the_hook(self):
        fired = []
        guard_state().reset(on_cancel=lambda: fired.append(True))
        guard_state().escalate("test", to_level=LEVEL_CANCEL)
        assert fired == [True]

    def test_escalation_never_goes_backwards(self):
        guard_state().escalate("test", to_level=LEVEL_WORKERS)
        guard_state().escalate("test", to_level=LEVEL_WAVE)
        assert guard_state().level == LEVEL_WORKERS

    def test_escalation_clamps_at_cancel(self):
        for _ in range(10):
            guard_state().escalate("test")
        assert guard_state().level == LEVEL_CANCEL

    def test_reset_returns_to_healthy(self):
        guard_state().escalate("test", to_level=LEVEL_CANCEL)
        reset_guard()
        assert guard_state().level == 0
        assert clamp_wave(8) == 8


class TestWatchdog:
    def test_sample_reads_real_process_state(self, tmp_path):
        dog = PressureWatchdog(
            ResourceBudget(memory_bytes=1), checkpoint_dir=tmp_path
        )
        record = dog.sample()
        assert record["level"] == 0
        assert record["rss_bytes"] > 0
        assert record["shm_free_bytes"] > 0
        assert record["disk_free_bytes"] > 0
        assert dog.samples == 1

    def test_evaluate_flags_hard_and_soft_rss(self):
        dog = PressureWatchdog(ResourceBudget(memory_bytes=100))
        assert "budget" in dog.evaluate(
            {"rss_bytes": 100, "shm_free_bytes": 2 * MIN_FREE_BYTES}
        )
        soft = int(100 * DEGRADE_FRACTION) + 1
        assert "85%" in dog.evaluate(
            {"rss_bytes": soft, "shm_free_bytes": 2 * MIN_FREE_BYTES}
        )
        assert (
            dog.evaluate(
                {"rss_bytes": 10, "shm_free_bytes": 2 * MIN_FREE_BYTES}
            )
            is None
        )

    def test_evaluate_flags_low_shm_and_disk(self):
        dog = PressureWatchdog(ResourceBudget(disk_bytes=1))
        assert "/dev/shm" in dog.evaluate(
            {"shm_free_bytes": MIN_FREE_BYTES - 1}
        )
        assert "disk free" in dog.evaluate(
            {
                "shm_free_bytes": 2 * MIN_FREE_BYTES,
                "disk_free_bytes": MIN_FREE_BYTES - 1,
            }
        )

    def test_hard_rss_overrun_jumps_to_cancel(self):
        # A 1-byte memory budget: the very first sample is a hard breach,
        # which must skip the gentle rungs and cancel outright.
        fired = []
        dog = PressureWatchdog(
            ResourceBudget(memory_bytes=1), cancel=lambda: fired.append(True)
        )
        guard_state().reset(on_cancel=dog._cancel)
        with use(Recorder()) as rec:
            record = dog.poll_once()
        assert record["breach"]
        assert record["level"] == LEVEL_CANCEL
        assert fired == [True]
        counters = rec.registry.snapshot()["counters"]
        assert counters["guard.breaches"] == 1
        assert counters["guard.degradations"] == 1
        assert rec.pressure_records == [record]

    def test_cooldown_batches_escalations(self):
        dog = PressureWatchdog(
            ResourceBudget(memory_bytes=1), cooldown=3600.0
        )
        guard_state().reset(on_cancel=None)
        with use(Recorder()):
            dog.poll_once()
            level_after_first = guard_state().level
            dog.poll_once()
        assert guard_state().level == level_after_first

    def test_healthy_budget_records_without_escalating(self):
        dog = PressureWatchdog(ResourceBudget(memory_bytes=64 * 1024**4))
        with use(Recorder()) as rec:
            record = dog.poll_once()
        assert "breach" not in record
        assert guard_state().level == 0
        assert rec.pressure_records == [record]

    def test_thread_lifecycle_samples_and_detaches(self):
        fired = []
        dog = PressureWatchdog(
            ResourceBudget(memory_bytes=64 * 1024**4, interval=0.01),
            cancel=lambda: fired.append(True),
        )
        with use(Recorder()):
            with dog:
                deadline = time.monotonic() + 2.0
                while dog.samples == 0 and time.monotonic() < deadline:
                    time.sleep(0.01)
        assert dog.samples > 0
        assert dog._thread is None
        # Stop detaches the cancel hook: a stale escalation must not be
        # able to cancel a later run.
        guard_state().escalate("after-stop", to_level=LEVEL_CANCEL)
        assert fired == []


class _WaitStage(PipelineStage):
    name = "wait"

    def run(self, ctx, value):
        time.sleep(0.3)
        return value


class _NoopStage(PipelineStage):
    name = "noop"

    def run(self, ctx, value):
        return value


class _NeverStage(PipelineStage):
    name = "never"

    ran: list = []

    def run(self, ctx, value):
        self.ran.append(1)
        return value


class TestPipelineIntegration:
    def test_guarded_run_lands_pressure_timeline_in_manifest(self, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        pipeline = Pipeline([_WaitStage()])
        ctx = ExecutionContext(
            budget=ResourceBudget(memory_bytes=64 * 1024**4, interval=0.02)
        )
        cfg = ObsConfig(log_level="error", metrics_out=str(manifest_path))
        import io

        with session(cfg, run_config={}, stream=io.StringIO()):
            pipeline.execute(None, ctx)
        manifest = load_manifest(manifest_path)
        assert manifest["pressure"], "watchdog samples missing from manifest"
        sample = manifest["pressure"][0]
        assert sample["rss_bytes"] > 0
        assert "guard.rss_bytes" in manifest["metrics"]["gauges"]

    def test_unbudgeted_run_keeps_pressure_empty(self, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        pipeline = Pipeline([_NoopStage()])
        cfg = ObsConfig(log_level="error", metrics_out=str(manifest_path))
        import io

        with session(cfg, run_config={}, stream=io.StringIO()):
            pipeline.execute(1, ExecutionContext())
        assert load_manifest(manifest_path)["pressure"] == []

    def test_preflight_rejection_happens_before_any_stage(self):
        stage = _NeverStage()
        stage.ran = []
        pipeline = Pipeline([stage])
        ctx = ExecutionContext(
            workers=4, budget=ResourceBudget(memory_bytes=1024)
        )
        with pytest.raises(BudgetExceeded):
            pipeline.execute(_FakeGraph(), ctx)
        assert stage.ran == []
