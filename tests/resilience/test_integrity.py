"""End-to-end artifact integrity: checksums, CheckpointCorrupt, quarantine.

Every persisted artifact (checkpoint, saved model) embeds a SHA-256 +
per-array CRC32 record; these tests tamper with the files in the ways
real storage fails — truncation, bit flips, garbage — and assert the
typed error, the quarantine path, and that resume restarts cleanly.
"""

import numpy as np
import pytest

from repro.core.model import V2V, V2VConfig
from repro.graph.generators import planted_partition
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder, use
from repro.resilience.checkpoint import (
    CheckpointCorrupt,
    CheckpointManager,
    integrity_record,
    load_checkpoint,
    save_checkpoint,
    verify_integrity,
)


@pytest.fixture()
def saved(tmp_path):
    path = tmp_path / "state.ckpt.npz"
    arrays = {
        "w": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.array([1, 2, 3], dtype=np.int64),
    }
    save_checkpoint(path, arrays, {"epoch": 7})
    return path, arrays


def truncate(path, keep_fraction=0.5):
    raw = path.read_bytes()
    path.write_bytes(raw[: int(len(raw) * keep_fraction)])


class TestIntegrityRecord:
    def test_is_deterministic(self):
        arrays = {"a": np.arange(5), "b": np.eye(3)}
        assert integrity_record(arrays) == integrity_record(dict(arrays))

    def test_sensitive_to_data_name_dtype_shape(self):
        base = integrity_record({"a": np.arange(6)})
        assert integrity_record({"a": np.arange(6) + 1})["digest"] != base["digest"]
        assert integrity_record({"b": np.arange(6)})["digest"] != base["digest"]
        assert (
            integrity_record({"a": np.arange(6, dtype=np.float64)})["digest"]
            != base["digest"]
        )
        assert (
            integrity_record({"a": np.arange(6).reshape(2, 3)})["digest"]
            != base["digest"]
        )

    def test_verify_names_the_rotten_array(self):
        arrays = {"good": np.arange(4), "bad": np.arange(9)}
        record = integrity_record(arrays)
        arrays["bad"] = arrays["bad"].copy()
        arrays["bad"][0] = 99
        with pytest.raises(CheckpointCorrupt, match="bad"):
            verify_integrity(arrays, record, path="x.npz")

    def test_verify_detects_meta_tamper(self):
        arrays = {"a": np.arange(4)}
        record = integrity_record(arrays, b'{"epoch": 1}')
        with pytest.raises(CheckpointCorrupt, match="metadata"):
            verify_integrity(arrays, record, meta_bytes=b'{"epoch": 2}')


class TestLoadCheckpointErrors:
    def test_missing_is_file_not_found(self, tmp_path):
        # "missing" must stay distinguishable from "corrupt".
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "ghost.ckpt.npz")

    def test_truncated_file_is_corrupt(self, saved):
        path, _ = saved
        truncate(path)
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)

    def test_garbage_file_is_corrupt(self, tmp_path):
        path = tmp_path / "junk.ckpt.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)

    def test_empty_file_is_corrupt(self, tmp_path):
        path = tmp_path / "empty.ckpt.npz"
        path.write_bytes(b"")
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)

    def test_corrupt_error_carries_path_and_reason(self, saved):
        path, _ = saved
        truncate(path)
        with pytest.raises(CheckpointCorrupt) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.path == path
        assert excinfo.value.reason

    def test_integrity_key_is_reserved(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(tmp_path / "x.npz", {}, {"__integrity__": 1})

    def test_meta_not_polluted_by_integrity_record(self, saved):
        path, arrays = saved
        ckpt = load_checkpoint(path)
        assert ckpt.meta == {"epoch": 7}
        for name, arr in arrays.items():
            np.testing.assert_array_equal(ckpt.arrays[name], arr)


@pytest.mark.chaos
class TestQuarantine:
    def test_corrupt_checkpoint_is_moved_aside(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("epoch", {"w": np.arange(4)}, {"epoch": 1})
        truncate(manager.path_for("epoch"))

        registry = MetricsRegistry()
        with use(Recorder(registry)):
            assert manager.load_if_exists("epoch") is None
        assert registry.snapshot()["counters"]["checkpoint.corrupt"] == 1

        # Original gone; quarantined copy keeps the bytes for forensics.
        assert not manager.exists("epoch")
        quarantined = [p for p in tmp_path.iterdir() if ".corrupt." in p.name]
        assert len(quarantined) == 1
        # Quarantined files are invisible to checkpoint enumeration.
        assert manager.names() == []

    def test_resave_after_quarantine_recovers(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("epoch", {"w": np.arange(4)}, {"epoch": 1})
        truncate(manager.path_for("epoch"))
        assert manager.load_if_exists("epoch") is None
        manager.save("epoch", {"w": np.arange(8)}, {"epoch": 2})
        ckpt = manager.load_if_exists("epoch")
        assert ckpt is not None and ckpt.meta["epoch"] == 2

    def test_missing_returns_none_without_quarantine(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.load_if_exists("never-saved") is None
        assert list(tmp_path.iterdir()) == []

    def test_quarantine_missing_file_returns_none(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.quarantine("ghost") is None


class TestDelete:
    def test_delete_is_idempotent(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("a", {"x": np.arange(2)})
        manager.delete("a")
        assert not manager.exists("a")
        manager.delete("a")  # second delete: no raise (TOCTOU-free)


class TestModelIntegrity:
    @pytest.fixture(scope="class")
    def fitted(self):
        g = planted_partition(n=40, groups=2, alpha=0.7, inter_edges=5, seed=0)
        config = V2VConfig(
            dim=6, epochs=2, walks_per_vertex=2, walk_length=10, seed=0
        )
        return V2V(config).fit(g)

    def test_roundtrip(self, fitted, tmp_path):
        fitted.save(tmp_path / "model.npz")
        loaded = V2V.load(tmp_path / "model.npz")
        np.testing.assert_array_equal(loaded.vectors, fitted.vectors)
        assert loaded.result.epochs_run == fitted.result.epochs_run

    def test_suffix_appended_like_savez(self, fitted, tmp_path):
        fitted.save(tmp_path / "model")
        assert (tmp_path / "model.npz").exists()
        V2V.load(tmp_path / "model.npz")

    def test_bit_flip_is_detected(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        fitted.save(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorrupt):
            V2V.load(path)

    def test_truncation_is_detected(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        fitted.save(path)
        truncate(path)
        with pytest.raises(CheckpointCorrupt):
            V2V.load(path)

    def test_missing_model_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            V2V.load(tmp_path / "ghost.npz")

    def test_atomic_model_write_leaves_no_tmp(self, fitted, tmp_path):
        fitted.save(tmp_path / "model.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_legacy_model_without_record_still_loads(self, fitted, tmp_path):
        # Files written before integrity records load unverified.
        path = tmp_path / "legacy.npz"
        result = fitted.result
        np.savez_compressed(
            path,
            vectors=result.vectors,
            loss_history=np.asarray(result.loss_history),
            epochs_run=result.epochs_run,
            converged=int(result.converged),
        )
        loaded = V2V.load(path)
        np.testing.assert_array_equal(loaded.vectors, result.vectors)
