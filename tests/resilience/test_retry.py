"""Tests for RetryPolicy, call_with_retry, and run_with_timeout."""

import time

import pytest

from repro.resilience.retry import (
    RetryError,
    RetryPolicy,
    call_with_retry,
    run_with_timeout,
)


def no_sleep(_seconds: float) -> None:
    pass


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_on=())

    def test_should_retry_filters_types(self):
        policy = RetryPolicy(retry_on=(OSError,))
        assert policy.should_retry(OSError())
        assert policy.should_retry(PermissionError())  # subclass
        assert not policy.should_retry(ValueError())

    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        assert policy.delay_schedule() == policy.delay_schedule()

    def test_schedule_seeds_differ(self):
        a = RetryPolicy(max_attempts=5, seed=1).delay_schedule()
        b = RetryPolicy(max_attempts=5, seed=2).delay_schedule()
        assert a != b

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.4, jitter=0.0
        )
        assert policy.delay_schedule() == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            max_attempts=20, base_delay=1.0, multiplier=1.0, jitter=0.25, seed=0
        )
        for delay in policy.delay_schedule():
            assert 0.75 <= delay <= 1.25


class TestCallWithRetry:
    def test_success_first_try(self):
        assert call_with_retry(lambda: 7, sleep=no_sleep) == 7

    def test_retries_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, retry_on=(OSError,))
        assert call_with_retry(flaky, policy=policy, sleep=no_sleep) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_raises_retry_error(self):
        def always_fails():
            raise OSError("down")

        policy = RetryPolicy(max_attempts=2, retry_on=(OSError,))
        with pytest.raises(RetryError) as err:
            call_with_retry(always_fails, policy=policy, sleep=no_sleep)
        assert err.value.attempts == 2
        assert isinstance(err.value.last_exception, OSError)

    def test_non_retryable_propagates_immediately(self):
        attempts = []

        def fails():
            attempts.append(1)
            raise ValueError("logic bug")

        policy = RetryPolicy(max_attempts=5, retry_on=(OSError,))
        with pytest.raises(ValueError):
            call_with_retry(fails, policy=policy, sleep=no_sleep)
        assert len(attempts) == 1

    def test_on_retry_hook(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("x")
            return 1

        policy = RetryPolicy(max_attempts=5, retry_on=(OSError,))
        call_with_retry(
            flaky,
            policy=policy,
            sleep=no_sleep,
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
        )
        assert seen == [(1, OSError), (2, OSError)]

    def test_args_forwarded(self):
        assert call_with_retry(lambda a, b=0: a + b, 2, b=3, sleep=no_sleep) == 5


class TestRunWithTimeout:
    def test_fast_call_returns(self):
        assert run_with_timeout(lambda: 42, 5.0) == 42

    def test_slow_call_times_out(self):
        with pytest.raises(TimeoutError):
            run_with_timeout(time.sleep, 0.05, 10.0)

    def test_exception_propagates(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            run_with_timeout(boom, 5.0)

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            run_with_timeout(lambda: 1, 0.0)
