"""Run lifecycle control: tokens, deadlines, signals, graceful shutdown.

Covers the cooperative-cancellation contract end to end: the primitives
(:class:`CancellationToken` / :class:`Deadline` / the ambient
:class:`CancelScope`), signal routing (:func:`signal_guard`), manifest
status classification, CLI exit codes, the atexit shared-memory sweep,
and — the headline guarantee — that a run interrupted mid-training and
resumed produces embeddings bitwise-identical to an uninterrupted run
of the same seed (the golden-checksum style assertion from
``tests/pipeline/test_golden.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.pipeline import ExecutionContext
from repro.resilience.chaos import FaultInjector
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.lifecycle import (
    EXIT_DEADLINE,
    EXIT_INTERRUPTED,
    NULL_SCOPE,
    CancellationToken,
    CancelScope,
    Deadline,
    RunInterrupted,
    cancel_scope,
    current_cancel_scope,
    expire_active_deadline,
    signal_guard,
)
from repro.resilience.supervisor import SupervisorConfig
from repro.walks.engine import RandomWalkConfig, generate_walks


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=60, groups=3, alpha=0.6, inter_edges=8, seed=0)


WALK_CFG = dict(walks_per_vertex=2, walk_length=12, seed=5)
TRAIN_CFG = dict(dim=8, epochs=4, batch_size=64, seed=3, early_stop=False)


def _digest(vectors: np.ndarray) -> str:
    data = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
    return hashlib.sha256(data.tobytes()).hexdigest()


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------
class TestCancellationToken:
    def test_first_cancel_wins(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.cancel("signal", detail="SIGTERM")
        assert not token.cancel("deadline")  # later calls are no-ops
        assert token.cancelled
        assert token.reason == "signal"
        assert token.detail == "SIGTERM"

    def test_on_cancel_fires_once_and_late_subscribers_fire_immediately(self):
        token = CancellationToken()
        fired: list[str] = []
        token.on_cancel(lambda: fired.append("early"))
        token.cancel()
        assert fired == ["early"]
        token.on_cancel(lambda: fired.append("late"))
        assert fired == ["early", "late"]

    def test_unsubscribe(self):
        token = CancellationToken()
        fired: list[int] = []
        unsubscribe = token.on_cancel(lambda: fired.append(1))
        unsubscribe()
        token.cancel()
        assert fired == []

    def test_broken_observer_does_not_mask_cancellation(self):
        token = CancellationToken()
        token.on_cancel(lambda: 1 / 0)
        assert token.cancel()
        assert token.cancelled


class TestDeadline:
    def test_remaining_and_expiry(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0
        deadline.force_expire()
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_zero_budget_expires_immediately(self):
        assert Deadline(0.0).expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Deadline(-1.0)


class TestCancelScope:
    def test_null_scope_never_raises(self):
        NULL_SCOPE.check()
        assert not NULL_SCOPE.cancelled()
        assert NULL_SCOPE.reason() is None

    def test_token_cancel_raises_with_exit_code_130(self):
        scope = CancelScope(CancellationToken(), None)
        scope.check()
        scope.token.cancel("signal", detail="SIGTERM")
        with pytest.raises(RunInterrupted) as err:
            scope.check()
        assert err.value.reason == "signal"
        assert err.value.exit_code == EXIT_INTERRUPTED

    def test_deadline_expiry_raises_124_and_cancels_token(self):
        token = CancellationToken()
        deadline = Deadline(60.0)
        scope = CancelScope(token, deadline)
        deadline.force_expire()
        with pytest.raises(RunInterrupted) as err:
            scope.check()
        assert err.value.reason == "deadline"
        assert err.value.exit_code == EXIT_DEADLINE
        # on_cancel observers (e.g. Hogwild slab broadcast) must fire
        # for deadlines too — check() routes expiry through the token.
        assert token.cancelled
        assert token.reason == "deadline"

    def test_ambient_scope_nesting_and_inheritance(self):
        assert current_cancel_scope() is NULL_SCOPE
        token = CancellationToken()
        deadline = Deadline(60.0)
        with cancel_scope(token=token):
            assert current_cancel_scope().token is token
            with cancel_scope(deadline=deadline):
                inner = current_cancel_scope()
                assert inner.token is token  # inherited from outer
                assert inner.deadline is deadline
            assert current_cancel_scope().deadline is None
        assert current_cancel_scope() is NULL_SCOPE

    def test_empty_scope_is_read_only_view(self):
        token = CancellationToken()
        with cancel_scope(token=token):
            with cancel_scope() as view:
                assert view.token is token

    def test_expire_active_deadline(self):
        assert not expire_active_deadline()  # nothing active
        with cancel_scope(deadline=Deadline(60.0)) as scope:
            assert expire_active_deadline()
            assert scope.deadline.expired()


class TestSignalGuard:
    def test_sigterm_requests_cancellation(self):
        token = CancellationToken()
        with signal_guard(token, hard_exit=False):
            os.kill(os.getpid(), signal.SIGTERM)
            for _ in range(100):
                if token.cancelled:
                    break
                time.sleep(0.01)
        assert token.cancelled
        assert token.reason == "signal"
        assert token.detail == "SIGTERM"

    def test_previous_handler_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with signal_guard(CancellationToken(), hard_exit=False):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_deadline_timer_cancels_token(self):
        token = CancellationToken()
        with signal_guard(token, deadline=Deadline(0.05), hard_exit=False):
            for _ in range(200):
                if token.cancelled:
                    break
                time.sleep(0.01)
        assert token.cancelled
        assert token.reason == "deadline"


class TestExecutionContextLifecycle:
    def test_context_carries_token_and_deadline(self):
        token = CancellationToken()
        ctx = ExecutionContext(cancellation=token, deadline=Deadline(60.0))
        assert not ctx.cancel_requested
        ctx.check_cancelled()
        token.cancel()
        assert ctx.cancel_requested
        with pytest.raises(RunInterrupted):
            ctx.check_cancelled()

    def test_lifecycle_activates_ambient_scope(self):
        token = CancellationToken()
        ctx = ExecutionContext(cancellation=token)
        with ctx.lifecycle():
            assert current_cancel_scope().token is token
        assert current_cancel_scope() is NULL_SCOPE

    def test_plain_context_reads_ambient_scope(self):
        ctx = ExecutionContext()
        token = CancellationToken()
        with cancel_scope(token=token):
            token.cancel()
            assert ctx.cancel_requested


# ---------------------------------------------------------------------------
# Engines stop at checkpointable boundaries
# ---------------------------------------------------------------------------
class _KillAfterEpoch:
    """Epoch callback that SIGTERMs the current process once."""

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.fired = False

    def __call__(self, epoch: int, mean_loss: float) -> None:
        if epoch == self.epoch and not self.fired:
            self.fired = True
            os.kill(os.getpid(), signal.SIGTERM)


@pytest.fixture(scope="module")
def corpus(graph):
    return generate_walks(graph, RandomWalkConfig(**WALK_CFG))


class TestCooperativeStops:
    def test_serial_trainer_pre_cancelled_raises_with_resume_point(
        self, corpus, tmp_path
    ):
        token = CancellationToken()
        token.cancel("signal")
        with pytest.raises(RunInterrupted):
            train_embeddings(
                corpus,
                TrainConfig(**TRAIN_CFG),
                context=ExecutionContext(
                    checkpoint_dir=tmp_path, cancellation=token
                ),
            )
        # Even a cancel that lands before the first epoch leaves a valid
        # resume point (the initial state), so --resume always works.
        assert CheckpointManager(tmp_path).exists("trainer")
        baseline = train_embeddings(corpus, TrainConfig(**TRAIN_CFG))
        resumed = train_embeddings(
            corpus,
            TrainConfig(**TRAIN_CFG),
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        assert _digest(resumed.vectors) == _digest(baseline.vectors)

    def test_walk_generation_honors_deadline(self, graph):
        deadline = Deadline(60.0)
        deadline.force_expire()
        with pytest.raises(RunInterrupted) as err:
            generate_walks(
                graph,
                RandomWalkConfig(**WALK_CFG),
                context=ExecutionContext(deadline=deadline),
            )
        assert err.value.reason == "deadline"

    def test_pipeline_stops_between_stages(self, graph):
        from repro.pipeline import Pipeline, WalkStage

        token = CancellationToken()
        token.cancel("signal")
        with pytest.raises(RunInterrupted):
            Pipeline([WalkStage(RandomWalkConfig(**WALK_CFG))]).execute(
                graph, context=ExecutionContext(cancellation=token)
            )


# ---------------------------------------------------------------------------
# The headline guarantee: interrupt → final checkpoint → bitwise resume
# ---------------------------------------------------------------------------
def _train_serial(corpus, ctx, callback=None):
    return train_embeddings(
        corpus, TrainConfig(**TRAIN_CFG), context=ctx, epoch_callback=callback
    )


def _train_hogwild1(corpus, ctx, callback=None):
    from repro.parallel.hogwild import train_hogwild

    return train_hogwild(
        corpus,
        TrainConfig(**TRAIN_CFG, workers=1),
        context=ctx,
        epoch_callback=callback,
    )


class TestInterruptResumeIdentity:
    """SIGTERM mid-run, then --resume ⇒ bitwise-identical embeddings."""

    @pytest.mark.parametrize(
        "train", [_train_serial, _train_hogwild1], ids=["serial", "hogwild1"]
    )
    def test_trainer_interrupt_resume_matches_uninterrupted(
        self, corpus, tmp_path, train
    ):
        baseline = train(corpus, ExecutionContext())

        token = CancellationToken()
        ctx = ExecutionContext(checkpoint_dir=tmp_path, cancellation=token)
        with signal_guard(token, hard_exit=False):
            with pytest.raises(RunInterrupted) as err:
                train(corpus, ctx, _KillAfterEpoch(1))
        assert err.value.reason == "signal"
        # The interrupted run left a final, resume-safe snapshot.
        assert CheckpointManager(tmp_path).exists("trainer")

        resumed = train(
            corpus,
            ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        assert _digest(resumed.vectors) == _digest(baseline.vectors)
        assert resumed.loss_history == baseline.loss_history
        assert resumed.epochs_run == baseline.epochs_run

    def test_supervised_walks_interrupt_resume_matches_uninterrupted(
        self, graph, tmp_path
    ):
        cfg = RandomWalkConfig(**WALK_CFG)
        uninterrupted = generate_walks(
            graph,
            cfg,
            context=ExecutionContext(checkpoint_dir=tmp_path / "ref"),
            checkpoint_chunks=4,
        )

        # A supervised worker fires SIGTERM at the parent (the
        # constructing process) mid-wave — external preemption chaos.
        marker = tmp_path / "fired"
        token = CancellationToken()
        ctx = ExecutionContext(
            checkpoint_dir=tmp_path / "run",
            workers=2,
            supervisor=SupervisorConfig(worker_deadline=30.0),
            cancellation=token,
            fault_injector=lambda fn: FaultInjector(
                fn, signal_on_calls={1}, once_marker=marker
            ),
        )
        with signal_guard(token, hard_exit=False):
            with pytest.raises(RunInterrupted):
                generate_walks(graph, cfg, context=ctx, checkpoint_chunks=4)
        assert token.cancelled

        resumed = generate_walks(
            graph,
            cfg,
            context=ExecutionContext(
                checkpoint_dir=tmp_path / "run", workers=2, resume=True
            ),
            checkpoint_chunks=4,
        )
        np.testing.assert_array_equal(uninterrupted.walks, resumed.walks)

    def test_deadline_fault_interrupts_and_resumes(self, corpus, tmp_path):
        baseline = _train_serial(corpus, ExecutionContext())

        # FaultInjector's `deadline` kind force-expires the active
        # budget; the trainer stops at the next batch boundary.
        injector = FaultInjector(lambda *a: None, deadline_on_calls={2})
        ctx = ExecutionContext(
            checkpoint_dir=tmp_path,
            cancellation=CancellationToken(),
            deadline=Deadline(3600.0),
        )
        with pytest.raises(RunInterrupted) as err:
            _train_serial(corpus, ctx, lambda e, ml: injector(e, ml))
        assert err.value.reason == "deadline"
        assert err.value.exit_code == EXIT_DEADLINE

        resumed = _train_serial(
            corpus, ExecutionContext(checkpoint_dir=tmp_path, resume=True)
        )
        assert _digest(resumed.vectors) == _digest(baseline.vectors)


# ---------------------------------------------------------------------------
# Manifest status + CLI exit codes
# ---------------------------------------------------------------------------
class TestManifestStatus:
    def test_build_manifest_rejects_unknown_status(self):
        from repro.obs.manifest import ManifestError, build_manifest
        from repro.obs.metrics import MetricsRegistry

        with pytest.raises(ManifestError, match="status"):
            build_manifest(MetricsRegistry(), status="exploded")

    @pytest.mark.parametrize(
        "raiser, status, reason",
        [
            (lambda: None, "completed", None),
            (
                lambda: (_ for _ in ()).throw(RunInterrupted("signal")),
                "interrupted",
                "signal",
            ),
            (
                lambda: (_ for _ in ()).throw(KeyboardInterrupt()),
                "interrupted",
                "keyboard_interrupt",
            ),
            (
                lambda: (_ for _ in ()).throw(ValueError("boom")),
                "failed",
                "ValueError",
            ),
        ],
        ids=["completed", "interrupted", "ctrl-c", "failed"],
    )
    def test_session_records_terminal_status(
        self, tmp_path, raiser, status, reason
    ):
        from repro.obs.recorder import ObsConfig, session

        out = tmp_path / "manifest.json"
        config = ObsConfig(metrics_out=str(out))
        try:
            with session(config, run_config={"cmd": "test"}):
                raiser()
        except (RunInterrupted, KeyboardInterrupt, ValueError):
            pass
        manifest = json.loads(out.read_text())
        assert manifest["status"] == status
        assert manifest["interrupt_reason"] == reason

    def test_report_renders_status_line(self, tmp_path):
        from repro.obs.manifest import write_manifest
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.report import render_report

        path = tmp_path / "m.json"
        manifest = write_manifest(
            path,
            registry=MetricsRegistry(),
            status="interrupted",
            interrupt_reason="deadline",
        )
        assert "status: interrupted (reason: deadline)" in render_report(manifest)


class TestCliExitCodes:
    @pytest.fixture()
    def edge_list(self, graph, tmp_path):
        from repro.graph.io import write_edge_list

        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        return path

    def test_expired_deadline_exits_124_with_interrupted_manifest(
        self, edge_list, tmp_path
    ):
        from repro.cli import main

        out = tmp_path / "vec.npz"
        manifest = tmp_path / "manifest.json"
        code = main(
            [
                "embed",
                str(edge_list),
                "-o",
                str(out),
                "--dim",
                "8",
                "--walks",
                "2",
                "--length",
                "10",
                "--epochs",
                "2",
                "--deadline",
                "0",
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
                "--metrics-out",
                str(manifest),
            ]
        )
        assert code == EXIT_DEADLINE
        recorded = json.loads(manifest.read_text())
        assert recorded["status"] == "interrupted"
        assert recorded["interrupt_reason"] == "deadline"
        assert recorded["metrics"]["counters"].get("lifecycle.interrupted")

    def test_keyboard_interrupt_exits_130_without_traceback(self, monkeypatch):
        import repro.cli as cli

        def _boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli.COMMANDS, "report", _boom)
        assert cli.main(["report", "whatever.json"]) == EXIT_INTERRUPTED

    def test_resumed_cli_run_matches_uninterrupted(self, edge_list, tmp_path):
        from repro.cli import main

        common = [
            "embed",
            str(edge_list),
            "--dim",
            "8",
            "--walks",
            "2",
            "--length",
            "10",
            "--epochs",
            "2",
            "--seed",
            "7",
        ]
        ref = tmp_path / "ref.npz"
        assert (
            main(common + ["-o", str(ref), "--checkpoint-dir", str(tmp_path / "a")])
            == 0
        )
        # Interrupt via expired deadline, then resume to completion.
        out = tmp_path / "out.npz"
        ckpt = str(tmp_path / "b")
        interrupted = main(
            common + ["-o", str(out), "--checkpoint-dir", ckpt, "--deadline", "0"]
        )
        assert interrupted == EXIT_DEADLINE
        assert (
            main(common + ["-o", str(out), "--checkpoint-dir", ckpt, "--resume"])
            == 0
        )
        with np.load(ref) as a, np.load(out) as b:
            np.testing.assert_array_equal(a["vectors"], b["vectors"])


# ---------------------------------------------------------------------------
# Abnormal-exit shared-memory sweep (atexit guard)
# ---------------------------------------------------------------------------
class TestShmAtexitSweep:
    SCRIPT = """
import sys
from repro.parallel.shm import SharedArray

segment = SharedArray.create((64,), "float64")  # owner, never destroyed
print(segment.spec.name, flush=True)
sys.exit(1)  # abnormal exit outside any context manager
"""

    def test_owned_segment_unlinked_at_interpreter_exit(self):
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode == 1
        name = proc.stdout.strip().splitlines()[-1].lstrip("/")
        assert name
        assert not os.path.exists(f"/dev/shm/{name}"), (
            f"segment {name} leaked past interpreter exit"
        )
