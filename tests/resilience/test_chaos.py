"""Tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.resilience.chaos import FaultInjector, InjectedFault


def identity(x):
    return x


class TestFailOnCalls:
    def test_fails_exactly_on_nth_call(self):
        inj = FaultInjector(identity, fail_on_calls={2})
        assert inj(10) == 10
        with pytest.raises(InjectedFault):
            inj(11)
        assert inj(12) == 12
        assert inj.calls == 3

    def test_reset_rewinds_counter(self):
        inj = FaultInjector(identity, fail_on_calls={1})
        with pytest.raises(InjectedFault):
            inj(0)
        assert inj(1) == 1
        inj.reset()
        with pytest.raises(InjectedFault):
            inj(2)


class TestFailItems:
    def test_triggers_on_argument_value(self):
        inj = FaultInjector(identity, fail_items=(3, 5))
        assert [inj(x) for x in (0, 1, 2)] == [0, 1, 2]
        with pytest.raises(InjectedFault):
            inj(3)
        with pytest.raises(InjectedFault):
            inj(5)
        assert inj(4) == 4


class TestRandomFailures:
    def test_rate_zero_never_fails(self):
        inj = FaultInjector(identity, failure_rate=0.0, seed=1)
        assert [inj(x) for x in range(50)] == list(range(50))

    def test_rate_one_always_fails(self):
        inj = FaultInjector(identity, failure_rate=1.0, seed=1)
        for x in range(5):
            with pytest.raises(InjectedFault):
                inj(x)

    def test_same_seed_same_failure_pattern(self):
        def pattern(seed):
            inj = FaultInjector(identity, failure_rate=0.4, seed=seed)
            outcomes = []
            for x in range(40):
                try:
                    inj(x)
                    outcomes.append(True)
                except InjectedFault:
                    outcomes.append(False)
            return outcomes

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        # The rate is roughly honoured.
        failures = pattern(7).count(False)
        assert 5 <= failures <= 30

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(identity, failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(identity, delay=-1)
        with pytest.raises(ValueError):
            FaultInjector(identity, seed=-2)


class TestDelay:
    def test_injects_latency(self):
        inj = FaultInjector(identity, delay=0.02)
        start = time.perf_counter()
        inj(1)
        assert time.perf_counter() - start >= 0.015


class TestOnceMarker:
    def test_fault_fires_once_then_recovers(self, tmp_path):
        marker = tmp_path / "fired"
        inj = FaultInjector(identity, fail_items=(3,), once_marker=marker)
        with pytest.raises(InjectedFault):
            inj(3)
        assert marker.exists()
        # Same trigger, but the marker disarms the fault.
        assert inj(3) == 3


class TestOnlyInSubprocess:
    def test_disarmed_in_home_process(self):
        inj = FaultInjector(identity, fail_on_calls={1}, only_in_subprocess=True)
        assert inj(9) == 9  # would raise if armed


class TestHangFault:
    def test_hangs_then_proceeds(self):
        inj = FaultInjector(identity, hang_on_calls={1}, hang_seconds=0.05)
        start = time.perf_counter()
        assert inj(7) == 7  # hang is latency, not failure
        assert time.perf_counter() - start >= 0.04
        # Second call does not hang.
        start = time.perf_counter()
        assert inj(8) == 8
        assert time.perf_counter() - start < 0.04

    def test_hang_items_with_once_marker(self, tmp_path):
        marker = tmp_path / "fired"
        inj = FaultInjector(
            identity, hang_items=(3,), hang_seconds=0.05, once_marker=marker
        )
        inj(3)
        # The marker is written *before* the sleep, so a killed-and-retried
        # worker would find the fault disarmed.
        assert marker.exists()
        start = time.perf_counter()
        inj(3)
        assert time.perf_counter() - start < 0.04

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(identity, hang_seconds=0)


class TestCorruptFileFault:
    def test_corrupts_target_file(self, tmp_path):
        victim = tmp_path / "artifact.bin"
        original = bytes(range(256)) * 8
        victim.write_bytes(original)
        inj = FaultInjector(identity, corrupt_on_calls={1}, corrupt_path=victim)
        assert inj(5) == 5  # the call itself succeeds
        mangled = victim.read_bytes()
        assert mangled != original
        assert len(mangled) == len(original) // 2  # truncated

    def test_missing_target_is_a_noop(self, tmp_path):
        inj = FaultInjector(
            identity, corrupt_on_calls={1}, corrupt_path=tmp_path / "ghost"
        )
        assert inj(1) == 1
        assert not (tmp_path / "ghost").exists()

    def test_requires_corrupt_path(self):
        with pytest.raises(ValueError):
            FaultInjector(identity, corrupt_on_calls={1})


class TestEnospcFault:
    def test_raises_the_exact_full_disk_errno(self):
        import errno

        inj = FaultInjector(identity, enospc_on_calls={2})
        assert inj(1) == 1
        with pytest.raises(OSError) as err:
            inj(2)
        assert err.value.errno == errno.ENOSPC
        assert inj(3) == 3  # only the marked call fails

    def test_item_trigger(self):
        inj = FaultInjector(identity, enospc_items={"victim"})
        assert inj("ok") == "ok"
        with pytest.raises(OSError):
            inj("victim")

    def test_once_marker_gives_fail_then_recover(self, tmp_path):
        marker = tmp_path / "fired"
        inj = FaultInjector(
            identity, enospc_on_calls={1, 2, 3}, once_marker=marker
        )
        with pytest.raises(OSError):
            inj(1)
        assert marker.exists()
        assert inj(2) == 2  # retry passes clean


class TestMemPressureFault:
    @pytest.fixture(autouse=True)
    def release_allocations(self):
        from repro.resilience.chaos import release_injected_memory

        yield
        release_injected_memory()

    def test_allocation_is_real_and_tracked(self):
        from repro.resilience.chaos import (
            injected_memory_bytes,
            release_injected_memory,
        )

        inj = FaultInjector(
            identity, mem_pressure_on_calls={1}, mem_pressure_bytes=1 << 20
        )
        assert injected_memory_bytes() == 0
        assert inj(7) == 7  # the call itself proceeds
        assert injected_memory_bytes() == 1 << 20
        assert inj(8) == 8  # no further allocation
        assert injected_memory_bytes() == 1 << 20
        assert release_injected_memory() == 1 << 20
        assert injected_memory_bytes() == 0

    def test_allocations_accumulate(self):
        from repro.resilience.chaos import injected_memory_bytes

        inj = FaultInjector(
            identity,
            mem_pressure_on_calls={1, 2},
            mem_pressure_bytes=1 << 16,
        )
        inj(1)
        inj(2)
        assert injected_memory_bytes() == 2 << 16

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(identity, mem_pressure_bytes=0)
