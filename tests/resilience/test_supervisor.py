"""Worker supervision: heartbeats, watchdog, respawn/degrade ladder.

The chaos-marked tests kill and hang real worker processes; they assert
the three liveness guarantees of ``supervised_map``: the map always
completes, results match the serial path, and nothing leaks in /dev/shm.
"""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder, use
from repro.parallel.shm import SHM_AVAILABLE
from repro.resilience.chaos import FaultInjector
from repro.resilience.supervisor import (
    NULL_HEARTBEAT,
    SupervisorConfig,
    current_heartbeat,
    supervised_map,
)

from tests.parallel.test_shm import shm_entries

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="platform has no shared memory"
)

FAST = dict(worker_deadline=10.0, max_respawns=5, poll_interval=0.02)


def square(x):
    return x * x


def failing(x):
    if x == 3:
        raise ValueError("item 3 is poison")
    return x


@pytest.fixture()
def no_leaks():
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture()
def recording():
    registry = MetricsRegistry()
    with use(Recorder(registry)):
        yield registry


class TestConfig:
    def test_defaults_are_valid(self):
        cfg = SupervisorConfig()
        assert cfg.worker_deadline == 30.0
        assert cfg.max_respawns == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker_deadline": 0},
            {"worker_deadline": -1.0},
            {"straggler_timeout": 0},
            {"max_respawns": -1},
            {"poll_interval": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


class TestHappyPath:
    def test_matches_serial(self, no_leaks):
        items = list(range(23))
        out = supervised_map(
            square, items, workers=4, config=SupervisorConfig(**FAST)
        )
        assert out == [square(x) for x in items]

    def test_serial_shortcuts(self):
        # workers=1 and single-item inputs never spawn processes.
        assert supervised_map(square, [5], workers=8) == [25]
        assert supervised_map(square, list(range(4)), workers=1) == [0, 1, 4, 9]
        assert supervised_map(square, [], workers=4) == []

    def test_more_workers_than_items(self, no_leaks):
        out = supervised_map(
            square, [1, 2], workers=8, config=SupervisorConfig(**FAST)
        )
        assert out == [1, 4]

    def test_work_exception_propagates(self, no_leaks):
        with pytest.raises(ValueError, match="poison"):
            supervised_map(
                failing, list(range(6)), workers=3, config=SupervisorConfig(**FAST)
            )


class TestHeartbeatAccessor:
    def test_null_outside_supervision(self):
        assert current_heartbeat() is NULL_HEARTBEAT
        current_heartbeat().beat()  # no-op, must not raise


@pytest.mark.chaos
class TestKilledWorker:
    def test_respawn_completes_the_map(self, tmp_path, no_leaks, recording):
        inj = FaultInjector(
            square,
            exit_on_calls={1},
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        out = supervised_map(
            inj, list(range(10)), workers=3, config=SupervisorConfig(**FAST)
        )
        assert (tmp_path / "fired").exists(), "fault never fired"
        assert out == [x * x for x in range(10)]
        counters = recording.snapshot()["counters"]
        assert counters["supervisor.respawns"] >= 1
        assert counters["supervisor.items_reassigned"] >= 1


@pytest.mark.chaos
class TestHungWorker:
    def test_hang_is_detected_within_deadline(self, tmp_path, no_leaks, recording):
        inj = FaultInjector(
            square,
            hang_on_calls={1},
            hang_seconds=3600.0,  # would stall forever without supervision
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        config = SupervisorConfig(
            worker_deadline=1.0, max_respawns=5, poll_interval=0.05
        )
        start = time.monotonic()
        out = supervised_map(inj, list(range(10)), workers=3, config=config)
        elapsed = time.monotonic() - start
        assert (tmp_path / "fired").exists(), "fault never fired"
        assert out == [x * x for x in range(10)]
        # Killed within a small multiple of the deadline, not after an hour.
        assert elapsed < 30.0
        assert recording.snapshot()["counters"]["supervisor.respawns"] >= 1


@pytest.mark.chaos
class TestDegradeLadder:
    def test_always_dying_workers_degrade_to_serial(self, no_leaks, recording):
        # Every subprocess call dies; only the in-process serial rung can
        # finish. No once_marker: the fault never disarms in workers.
        inj = FaultInjector(
            square,
            exit_on_calls=set(range(1, 100)),
            only_in_subprocess=True,
        )
        config = SupervisorConfig(
            worker_deadline=10.0, max_respawns=2, poll_interval=0.02
        )
        out = supervised_map(inj, list(range(6)), workers=4, config=config)
        assert out == [x * x for x in range(6)]
        counters = recording.snapshot()["counters"]
        assert counters["supervisor.degrades"] >= 1
        assert counters["supervisor.serial_fallbacks"] == 1


@pytest.mark.chaos
class TestStraggler:
    def test_straggler_is_killed_and_reassigned(self, tmp_path, no_leaks, recording):
        # straggler_timeout (0.5s) undercuts worker_deadline (2s), so the
        # watchdog's straggler branch is what reaps the sleeping worker.
        inj = FaultInjector(
            square,
            hang_on_calls={1},
            hang_seconds=3600.0,
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        config = SupervisorConfig(
            worker_deadline=2.0,
            straggler_timeout=0.5,
            max_respawns=5,
            poll_interval=0.05,
        )
        out = supervised_map(inj, list(range(8)), workers=2, config=config)
        assert out == [x * x for x in range(8)]
        assert recording.snapshot()["counters"]["supervisor.respawns"] >= 1
