"""Disk-full hardening of the atomic write path.

The contract: a failed :func:`atomic_write_bytes` never strands its
``*.tmp.<pid>`` file (a leaked tmp on a full disk eats exactly the
space the next write needs), ``ENOSPC`` surfaces as the typed
:class:`DiskFull` only after one reclaim-and-retry pass, and
:func:`reclaim_disk` removes precisely the artifacts nothing will ever
read again.
"""

import errno
import os

import pytest

from repro.obs.recorder import Recorder, use
from repro.resilience.chaos import FaultInjector
from repro.resilience.checkpoint import (
    DiskFull,
    atomic_write_bytes,
    load_checkpoint,
    reclaim_disk,
    save_checkpoint,
)


def _tmp_leftovers(directory):
    return [p.name for p in directory.rglob("*") if ".tmp." in p.name]


class TestAtomicWriteBytes:
    def test_happy_path_leaves_only_the_file(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert _tmp_leftovers(tmp_path) == []

    def test_single_enospc_is_retried_after_reclaim(self, tmp_path, monkeypatch):
        # Inject the exact OSError a full filesystem produces into the
        # first fsync; the reclaim-and-retry pass must then succeed.
        monkeypatch.setattr(
            os, "fsync", FaultInjector(os.fsync, enospc_on_calls={1})
        )
        target = tmp_path / "out.json"
        with use(Recorder()) as rec:
            atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert _tmp_leftovers(tmp_path) == []
        counters = rec.registry.snapshot()["counters"]
        assert counters["checkpoint.enospc"] == 1
        assert counters["fault.injected"] == 1

    def test_reclaim_frees_space_the_retry_needs(self, tmp_path, monkeypatch):
        # A stale tmp from a "crashed" writer sits in the directory; the
        # ENOSPC retry path must have garbage-collected it.
        stale = tmp_path / "old.json.tmp.99999"
        stale.write_bytes(b"x" * 128)
        monkeypatch.setattr(
            os, "fsync", FaultInjector(os.fsync, enospc_on_calls={1})
        )
        atomic_write_bytes(tmp_path / "out.json", b"payload")
        assert not stale.exists()

    def test_persistent_enospc_raises_typed_diskfull(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            os, "fsync", FaultInjector(os.fsync, enospc_on_calls={1, 2})
        )
        target = tmp_path / "out.json"
        with pytest.raises(DiskFull) as err:
            atomic_write_bytes(target, b"payload")
        assert err.value.path == target
        assert err.value.errno == errno.ENOSPC
        assert isinstance(err.value, OSError)
        assert not target.exists()
        assert _tmp_leftovers(tmp_path) == []

    def test_non_enospc_oserror_propagates_untyped(self, tmp_path, monkeypatch):
        def denied(path, target_path):
            raise OSError(errno.EACCES, "permission denied")

        monkeypatch.setattr(os, "replace", denied)
        with pytest.raises(OSError) as err:
            atomic_write_bytes(tmp_path / "out.json", b"payload")
        assert not isinstance(err.value, DiskFull)
        assert _tmp_leftovers(tmp_path) == []

    def test_arbitrary_failure_unlinks_the_tmp(self, tmp_path, monkeypatch):
        # Non-OSError failures (a KeyboardInterrupt mid-write, a bug in
        # a monkeypatched layer) must also clean up.
        def boom(path, target_path):
            raise RuntimeError("torn mid-replace")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(RuntimeError):
            atomic_write_bytes(tmp_path / "out.json", b"payload")
        assert _tmp_leftovers(tmp_path) == []

    def test_checkpoint_save_rides_the_same_path(self, tmp_path, monkeypatch):
        import numpy as np

        monkeypatch.setattr(
            os, "fsync", FaultInjector(os.fsync, enospc_on_calls={1})
        )
        path = tmp_path / "state.ckpt.npz"
        save_checkpoint(path, {"a": np.arange(4)}, {"epoch": 1})
        loaded = load_checkpoint(path)
        np.testing.assert_array_equal(loaded.arrays["a"], np.arange(4))
        assert _tmp_leftovers(tmp_path) == []


class TestReclaimDisk:
    def test_removes_only_reclaimable_artifacts(self, tmp_path):
        victims = [
            tmp_path / "a.ckpt.npz.tmp.1234",
            tmp_path / "b.ckpt.npz.corrupt.1700000000",
            tmp_path / "c.ckpt.npz.corrupt.1700000000.1",
            tmp_path / "nested" / "d.json.tmp.42",
        ]
        survivors = [
            tmp_path / "keep.ckpt.npz",
            tmp_path / "data.tmp.notapid",
            tmp_path / "corrupt.story.txt",
        ]
        (tmp_path / "nested").mkdir()
        for p in victims + survivors:
            p.write_bytes(b"x" * 10)
        freed = reclaim_disk(tmp_path)
        assert freed == 10 * len(victims)
        assert all(not p.exists() for p in victims)
        assert all(p.exists() for p in survivors)

    def test_missing_root_is_a_noop(self, tmp_path):
        assert reclaim_disk(tmp_path / "nope") == 0

    def test_emits_reclaim_telemetry(self, tmp_path):
        (tmp_path / "stale.npz.tmp.7").write_bytes(b"x" * 64)
        with use(Recorder()) as rec:
            reclaim_disk(tmp_path)
        counters = rec.registry.snapshot()["counters"]
        assert counters["checkpoint.disk_reclaimed_bytes"] == 64
