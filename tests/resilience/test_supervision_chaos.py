"""Pipeline-level supervision chaos: every parallel stage self-heals.

These are the acceptance tests for the self-healing layer: a walk worker
killed mid-wave and a Hogwild worker killed or hung mid-epoch must leave
a completed run with identical-shape output, ``supervisor.respawns`` in
the manifest, and nothing in /dev/shm; a corrupted checkpoint must be
quarantined and the phase restarted cleanly; and with supervision
*configured but idle* (``workers=1``, no faults) the pipeline stays
bitwise-identical to the serial path.
"""

import io

import numpy as np
import pytest

from repro.core.model import V2V, V2VConfig
from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.obs.manifest import load_manifest
from repro.obs.recorder import ObsConfig, session
from repro.parallel.hogwild import (
    hogwild_epoch_task,
    hogwild_supported,
    train_hogwild,
)
from repro.pipeline import ExecutionContext
from repro.resilience.chaos import FaultInjector
from repro.resilience.supervisor import SupervisorConfig
from repro.walks import engine
from repro.walks.engine import RandomWalkConfig, generate_walks

from tests.parallel.test_shm import shm_entries

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not hogwild_supported(), reason="platform has no shared memory"
    ),
]

SUPERVISED = SupervisorConfig(
    worker_deadline=2.0, max_respawns=5, poll_interval=0.05
)


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=90, groups=3, alpha=0.7, inter_edges=10, seed=0)


@pytest.fixture(scope="module")
def corpus(graph):
    return generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=5)
    )


@pytest.fixture()
def no_leaks():
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def _train_config(**overrides):
    base = dict(
        dim=12,
        epochs=3,
        batch_size=128,
        seed=3,
        early_stop=False,
        workers=2,
        supervisor=SUPERVISED,
    )
    base.update(overrides)
    return TrainConfig(**base)


class TestHogwildKilledWorker:
    def test_killed_worker_is_respawned_and_epoch_completes(
        self, corpus, tmp_path, no_leaks
    ):
        manifest_path = tmp_path / "run.json"
        injector = FaultInjector(
            hogwild_epoch_task,
            exit_on_calls={1},
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        cfg = ObsConfig(log_level="error", metrics_out=str(manifest_path))
        with session(cfg, run_config={"chaos": "kill"}, stream=io.StringIO()):
            result = train_hogwild(corpus, _train_config(), task_fn=injector)

        assert (tmp_path / "fired").exists(), "fault never fired"
        assert result.epochs_run == 3
        assert result.vectors.shape == (corpus.num_vertices, 12)
        assert np.all(np.isfinite(result.vectors))
        counters = load_manifest(manifest_path)["metrics"]["counters"]
        assert counters["supervisor.respawns"] >= 1


class TestHogwildHungWorker:
    def test_hung_worker_completes_epoch_via_respawn(
        self, corpus, tmp_path, no_leaks
    ):
        # The acceptance scenario: a worker that would sleep for an hour
        # mid-epoch is killed within the deadline budget and its shard
        # re-run — no indefinite stall.
        manifest_path = tmp_path / "run.json"
        injector = FaultInjector(
            hogwild_epoch_task,
            hang_on_calls={1},
            hang_seconds=3600.0,
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        cfg = ObsConfig(log_level="error", metrics_out=str(manifest_path))
        with session(cfg, run_config={"chaos": "hang"}, stream=io.StringIO()):
            result = train_hogwild(corpus, _train_config(), task_fn=injector)

        assert (tmp_path / "fired").exists(), "fault never fired"
        assert result.epochs_run == 3
        assert np.all(np.isfinite(result.vectors))
        counters = load_manifest(manifest_path)["metrics"]["counters"]
        assert counters["supervisor.respawns"] >= 1


class TestWalkWorkerKilled:
    def test_killed_chunk_worker_yields_identical_corpus(
        self, graph, tmp_path, no_leaks, monkeypatch
    ):
        config = RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=5)
        baseline = generate_walks(graph, config, workers=2)

        manifest_path = tmp_path / "run.json"
        injector = FaultInjector(
            engine._chunk_task_shm,
            exit_on_calls={1},
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        )
        monkeypatch.setattr(engine, "_chunk_task_shm", injector)
        cfg = ObsConfig(log_level="error", metrics_out=str(manifest_path))
        with session(cfg, run_config={"chaos": "walk-kill"}, stream=io.StringIO()):
            supervised = generate_walks(
                graph,
                config,
                context=ExecutionContext(workers=2, supervisor=SUPERVISED),
            )

        assert (tmp_path / "fired").exists(), "fault never fired"
        # Chunk re-execution is idempotent: bitwise-identical corpus.
        np.testing.assert_array_equal(supervised.walks, baseline.walks)
        counters = load_manifest(manifest_path)["metrics"]["counters"]
        assert counters["supervisor.respawns"] >= 1


class TestCorruptCheckpointRestart:
    def test_corrupt_walk_chunk_quarantined_then_recomputed(self, graph, tmp_path):
        config = RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=5)
        ckpt_dir = tmp_path / "walks"
        baseline = generate_walks(
            graph,
            config,
            context=ExecutionContext(workers=2, checkpoint_dir=ckpt_dir),
        )
        # The corrupt_file fault mangles one completed chunk on disk.
        victim = ckpt_dir / "walks-0000.ckpt.npz"
        assert victim.exists()
        injector = FaultInjector(
            lambda: None, corrupt_on_calls={1}, corrupt_path=victim
        )
        injector()
        resumed = generate_walks(
            graph,
            config,
            context=ExecutionContext(
                workers=2, checkpoint_dir=ckpt_dir, resume=True
            ),
        )
        # Quarantined aside, recomputed, and bitwise-identical anyway.
        np.testing.assert_array_equal(resumed.walks, baseline.walks)
        assert any(".corrupt." in p.name for p in ckpt_dir.iterdir())
        assert victim.exists()  # the recomputed replacement

    def test_corrupt_trainer_checkpoint_restarts_phase(self, corpus, tmp_path):
        config = TrainConfig(dim=8, epochs=2, seed=1, early_stop=False)
        fresh = train_embeddings(corpus, config)
        ckpt_dir = tmp_path / "ckpt"
        train_embeddings(
            corpus, config, context=ExecutionContext(checkpoint_dir=ckpt_dir)
        )
        victim = ckpt_dir / "trainer.ckpt.npz"
        assert victim.exists()
        injector = FaultInjector(
            lambda: None, corrupt_on_calls={1}, corrupt_path=victim
        )
        injector()
        # Resume must NOT crash with a BadZipFile: the corrupt snapshot is
        # quarantined and training restarts from scratch, deterministically.
        resumed = train_embeddings(
            corpus,
            config,
            context=ExecutionContext(checkpoint_dir=ckpt_dir, resume=True),
        )
        np.testing.assert_array_equal(resumed.vectors, fresh.vectors)
        assert any(".corrupt." in p.name for p in ckpt_dir.iterdir())


class TestSupervisionDisabledIdentity:
    def test_workers_1_with_supervision_config_is_bitwise_serial(self, graph):
        # Acceptance criterion: supervision configured but inert
        # (workers=1, no faults) must not perturb the numerics.
        plain = V2VConfig(
            dim=8, epochs=2, walks_per_vertex=2, walk_length=10, seed=0
        )
        supervised = V2VConfig(
            dim=8,
            epochs=2,
            walks_per_vertex=2,
            walk_length=10,
            seed=0,
            worker_deadline=5.0,
            max_respawns=2,
        )
        a = V2V(plain).fit(graph).vectors
        b = V2V(supervised).fit(graph).vectors
        np.testing.assert_array_equal(a, b)
