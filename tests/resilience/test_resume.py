"""Kill-and-resume round trips for the walk engine, trainer, and facade.

The contract under test: a run that crashes after any checkpoint and is
restarted with ``resume=True`` must finish with results bitwise-identical
to an uninterrupted run of the same seeded configuration.
"""

import numpy as np
import pytest

from repro.core.model import V2V, V2VConfig
from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.pipeline import ExecutionContext
from repro.resilience.chaos import FaultInjector, InjectedFault
from repro.resilience.checkpoint import CheckpointManager
from repro.walks.engine import RandomWalkConfig, generate_walks


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=60, groups=3, alpha=0.6, inter_edges=8, seed=0)


WALK_CFG = dict(walks_per_vertex=2, walk_length=12, seed=5)
TRAIN_CFG = dict(dim=8, epochs=4, batch_size=64, seed=3, early_stop=False)


class TestWalkResume:
    def test_checkpointed_run_matches_rerun(self, graph, tmp_path):
        cfg = RandomWalkConfig(**WALK_CFG)
        first = generate_walks(
            graph, cfg, context=ExecutionContext(checkpoint_dir=tmp_path),
            checkpoint_chunks=4,
        )
        resumed = generate_walks(
            graph,
            cfg,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
            checkpoint_chunks=4,
        )
        np.testing.assert_array_equal(first.walks, resumed.walks)
        assert len(CheckpointManager(tmp_path).names()) == 4

    def test_partial_chunks_are_completed(self, graph, tmp_path):
        cfg = RandomWalkConfig(**WALK_CFG)
        full = generate_walks(
            graph,
            cfg,
            context=ExecutionContext(checkpoint_dir=tmp_path / "full"),
            checkpoint_chunks=4,
        )
        # Simulate a crash that persisted only the first two chunks.
        mgr_full = CheckpointManager(tmp_path / "full")
        mgr_part = CheckpointManager(tmp_path / "part")
        for name in mgr_full.names()[:2]:
            ckpt = mgr_full.load(name)
            mgr_part.save(name, ckpt.arrays, ckpt.meta)
        resumed = generate_walks(
            graph,
            cfg,
            context=ExecutionContext(
                checkpoint_dir=tmp_path / "part", resume=True
            ),
            checkpoint_chunks=4,
        )
        np.testing.assert_array_equal(full.walks, resumed.walks)
        assert len(mgr_part.names()) == 4

    def test_fingerprint_mismatch_refuses_resume(self, graph, tmp_path):
        generate_walks(
            graph,
            RandomWalkConfig(**WALK_CFG),
            context=ExecutionContext(checkpoint_dir=tmp_path),
            checkpoint_chunks=4,
        )
        other = RandomWalkConfig(**{**WALK_CFG, "seed": 6})
        with pytest.raises(ValueError, match="different walk configuration"):
            generate_walks(
                graph,
                other,
                context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
                checkpoint_chunks=4,
            )

    def test_without_resume_recomputes(self, graph, tmp_path):
        cfg = RandomWalkConfig(**WALK_CFG)
        first = generate_walks(
            graph, cfg, context=ExecutionContext(checkpoint_dir=tmp_path),
            checkpoint_chunks=2,
        )
        again = generate_walks(
            graph,
            cfg,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=False),
            checkpoint_chunks=2,
        )
        np.testing.assert_array_equal(first.walks, again.walks)


class _CrashAfterEpoch:
    """Epoch callback that raises once the given epoch completes."""

    def __init__(self, epoch: int) -> None:
        self.injector = FaultInjector(lambda *a: None, fail_on_calls={epoch + 1})

    def __call__(self, epoch: int, mean_loss: float) -> None:
        self.injector(epoch, mean_loss)


@pytest.fixture(scope="module")
def corpus(graph):
    return generate_walks(graph, RandomWalkConfig(**WALK_CFG))


class TestTrainerResume:
    @pytest.mark.parametrize("crash_after", [0, 1, 2])
    def test_kill_and_resume_is_bitwise_identical(self, corpus, tmp_path, crash_after):
        config = TrainConfig(**TRAIN_CFG)
        baseline = train_embeddings(corpus, config)

        ckpt_dir = tmp_path / f"crash{crash_after}"
        with pytest.raises(InjectedFault):
            train_embeddings(
                corpus,
                config,
                context=ExecutionContext(checkpoint_dir=ckpt_dir),
                epoch_callback=_CrashAfterEpoch(crash_after),
            )
        assert CheckpointManager(ckpt_dir).exists("trainer")

        resumed = train_embeddings(
            corpus,
            config,
            context=ExecutionContext(checkpoint_dir=ckpt_dir, resume=True),
        )
        np.testing.assert_array_equal(baseline.vectors, resumed.vectors)
        assert resumed.loss_history == baseline.loss_history
        assert resumed.epochs_run == baseline.epochs_run

    def test_streaming_kill_and_resume(self, corpus, tmp_path):
        config = TrainConfig(**{**TRAIN_CFG, "streaming": True, "stream_rows": 16})
        baseline = train_embeddings(corpus, config)
        with pytest.raises(InjectedFault):
            train_embeddings(
                corpus,
                config,
                context=ExecutionContext(checkpoint_dir=tmp_path),
                epoch_callback=_CrashAfterEpoch(1),
            )
        resumed = train_embeddings(
            corpus,
            config,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        np.testing.assert_array_equal(baseline.vectors, resumed.vectors)
        assert resumed.loss_history == baseline.loss_history

    def test_resume_of_finished_run_returns_final_state(self, corpus, tmp_path):
        config = TrainConfig(**TRAIN_CFG)
        done = train_embeddings(
            corpus, config, context=ExecutionContext(checkpoint_dir=tmp_path)
        )
        again = train_embeddings(
            corpus,
            config,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        np.testing.assert_array_equal(done.vectors, again.vectors)
        assert again.epochs_run == done.epochs_run

    def test_checkpointing_does_not_change_results(self, corpus, tmp_path):
        config = TrainConfig(**TRAIN_CFG)
        plain = train_embeddings(corpus, config)
        checkpointed = train_embeddings(
            corpus, config, context=ExecutionContext(checkpoint_dir=tmp_path)
        )
        np.testing.assert_array_equal(plain.vectors, checkpointed.vectors)

    def test_config_mismatch_refuses_resume(self, corpus, tmp_path):
        train_embeddings(
            corpus,
            TrainConfig(**TRAIN_CFG),
            context=ExecutionContext(checkpoint_dir=tmp_path),
        )
        other = TrainConfig(**{**TRAIN_CFG, "lr": 0.01})
        with pytest.raises(ValueError, match="different configuration"):
            train_embeddings(
                corpus,
                other,
                context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
            )

    def test_early_stop_state_survives_resume(self, corpus, tmp_path):
        # With early stopping on, convergence counters (best loss, stall)
        # must be part of the snapshot or a resumed run stops late.
        config = TrainConfig(
            **{**TRAIN_CFG, "early_stop": True, "epochs": 6, "tol": 0.5}
        )
        baseline = train_embeddings(corpus, config)
        with pytest.raises(InjectedFault):
            train_embeddings(
                corpus,
                config,
                context=ExecutionContext(checkpoint_dir=tmp_path),
                epoch_callback=_CrashAfterEpoch(0),
            )
        resumed = train_embeddings(
            corpus,
            config,
            context=ExecutionContext(checkpoint_dir=tmp_path, resume=True),
        )
        assert resumed.converged == baseline.converged
        assert resumed.loss_history == baseline.loss_history
        np.testing.assert_array_equal(baseline.vectors, resumed.vectors)


class TestFacadeResume:
    def test_fit_resume_after_walk_stage_crash(self, graph, tmp_path):
        # Simulate a run killed between the walk stage and training:
        # only the walk checkpoints exist; resume must finish training
        # and match a checkpointed run that was never interrupted.
        config = V2VConfig(
            dim=8, walks_per_vertex=2, walk_length=12, epochs=3, seed=2
        )
        uninterrupted = V2V(config).fit(graph, checkpoint_dir=tmp_path / "a")
        generate_walks(
            graph,
            config.walk_config(),
            context=ExecutionContext(checkpoint_dir=tmp_path / "b" / "walks"),
        )  # walk stage completed; trainer checkpoint absent
        resumed = V2V(config).fit(
            graph, checkpoint_dir=tmp_path / "b", resume=True
        )
        np.testing.assert_array_equal(uninterrupted.vectors, resumed.vectors)

    def test_fit_resume_matches_checkpointed_run(self, graph, tmp_path):
        config = V2VConfig(
            dim=8, walks_per_vertex=2, walk_length=12, epochs=3, seed=2
        )
        first = V2V(config).fit(graph, checkpoint_dir=tmp_path)
        resumed = V2V(config).fit(graph, checkpoint_dir=tmp_path, resume=True)
        np.testing.assert_array_equal(first.vectors, resumed.vectors)
        mgr = CheckpointManager(tmp_path / "walks")
        assert mgr.names()  # walk chunks persisted under <dir>/walks
        assert CheckpointManager(tmp_path).exists("trainer")
