"""Crash-safe run registry: journal folding, torn lines, orphan sweeping."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.recorder import Recorder, use
from repro.parallel.shm import SHM_MOUNT
from repro.resilience.registry import JOURNAL_NAME, RunRegistry


@pytest.fixture(scope="module")
def dead_pid():
    """A pid that certainly ran and certainly exited."""
    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    return proc.pid


class TestJournal:
    def test_open_then_close_folds_to_terminal_status(self, tmp_path):
        registry = RunRegistry(tmp_path)
        run_id = registry.open_run(
            command="embed",
            argv=["embed", "g.edges", "--dim", "8"],
            config_fingerprint="abc123",
        )
        registry.close_run("completed")
        (run,) = registry.runs()
        assert run.run_id == run_id
        assert run.status == "completed"
        assert run.command == "embed"
        assert run.argv == ("embed", "g.edges", "--dim", "8")
        assert run.config_fingerprint == "abc123"
        assert run.pid == os.getpid()
        assert run.updated_unix >= run.started_unix > 0

    def test_close_without_open_is_a_noop(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.close_run("completed")
        assert not (tmp_path / JOURNAL_NAME).exists()

    def test_close_rejects_unknown_status(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.open_run(command="embed")
        with pytest.raises(ValueError, match="unknown run status"):
            registry.close_run("exploded")

    def test_terminal_record_does_not_erase_open_fields(self, tmp_path):
        # The close record carries command=None etc.; folding must keep
        # the values the open record established.
        registry = RunRegistry(tmp_path)
        registry.open_run(command="embed", argv=["embed", "x"])
        registry.close_run("interrupted", reason="signal")
        (run,) = registry.runs()
        assert run.command == "embed"
        assert run.argv == ("embed", "x")
        assert run.reason == "signal"

    def test_torn_last_line_is_tolerated(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.open_run(command="embed", argv=["embed", "x"])
        registry.close_run("completed")
        # Simulate a crash mid-append: a half-written JSON line.
        with (tmp_path / JOURNAL_NAME).open("a") as fh:
            fh.write('{"run_id": "zzz", "status": "runn')
        runs = registry.runs()
        assert len(runs) == 1
        assert runs[0].status == "completed"

    def test_unknown_keys_land_in_extra(self, tmp_path):
        registry = RunRegistry(tmp_path)
        line = json.dumps(
            {"run_id": "r1", "pid": 1, "status": "running", "note": "hi"}
        )
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / JOURNAL_NAME).write_text(line + "\n")
        (run,) = registry.runs()
        assert run.extra == {"note": "hi"}

    def test_unwritable_journal_never_raises(self, tmp_path):
        # checkpoint "dir" is actually a file: every mkdir/append fails
        # with OSError, which the flight recorder must swallow.
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        registry = RunRegistry(blocker / "nested")
        registry.open_run(command="embed")
        registry.close_run("completed")
        assert registry.runs() == []


class TestResumable:
    def _journal(self, tmp_path, *records):
        (tmp_path / JOURNAL_NAME).write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        return RunRegistry(tmp_path)

    def test_latest_resumable_prefers_most_recent(self, tmp_path):
        registry = self._journal(
            tmp_path,
            {"run_id": "a", "pid": 1, "status": "running",
             "argv": ["embed", "x"], "time_unix": 100.0},
            {"run_id": "a", "pid": 1, "status": "interrupted",
             "time_unix": 110.0},
            {"run_id": "b", "pid": 2, "status": "running",
             "argv": ["embed", "y"], "time_unix": 200.0},
            {"run_id": "b", "pid": 2, "status": "failed", "time_unix": 210.0},
        )
        latest = registry.latest_resumable()
        assert latest.run_id == "b"

    def test_completed_runs_are_not_resumable(self, tmp_path):
        registry = self._journal(
            tmp_path,
            {"run_id": "a", "pid": 1, "status": "completed",
             "argv": ["embed", "x"], "time_unix": 100.0},
        )
        assert registry.latest_resumable() is None

    def test_runs_without_argv_are_not_resumable(self, tmp_path):
        registry = self._journal(
            tmp_path,
            {"run_id": "a", "pid": 1, "status": "interrupted",
             "time_unix": 100.0},
        )
        assert registry.latest_resumable() is None

    def test_orphaned_runs_are_resumable(self, tmp_path):
        registry = self._journal(
            tmp_path,
            {"run_id": "a", "pid": 1, "status": "orphaned",
             "argv": ["embed", "x"], "time_unix": 100.0},
        )
        assert registry.latest_resumable().run_id == "a"


class TestSweep:
    def test_dead_running_pid_becomes_orphaned(self, tmp_path, dead_pid):
        registry = RunRegistry(tmp_path)
        (tmp_path / JOURNAL_NAME).write_text(
            json.dumps(
                {"run_id": "gone", "pid": dead_pid, "status": "running",
                 "argv": ["embed", "x"], "time_unix": 100.0}
            )
            + "\n"
        )
        with use(Recorder()) as rec:
            summary = registry.sweep()
        assert summary["orphaned_runs"] == ["gone"]
        (run,) = registry.runs()
        assert run.status == "orphaned"
        assert run.reason == "pid_gone"
        assert run.resumable
        counters = rec.registry.snapshot()["counters"]
        assert counters["registry.orphans_swept"] == 1

    def test_live_running_pid_is_untouched(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.open_run(command="embed", argv=["embed", "x"])
        summary = registry.sweep()
        assert summary["orphaned_runs"] == []
        (run,) = registry.runs()
        assert run.status == "running"

    def test_sweep_is_idempotent(self, tmp_path, dead_pid):
        registry = RunRegistry(tmp_path)
        (tmp_path / JOURNAL_NAME).write_text(
            json.dumps(
                {"run_id": "gone", "pid": dead_pid, "status": "running",
                 "time_unix": 100.0}
            )
            + "\n"
        )
        assert registry.sweep()["orphaned_runs"] == ["gone"]
        assert registry.sweep()["orphaned_runs"] == []

    def test_tmp_files_of_dead_pids_are_removed(self, tmp_path, dead_pid):
        registry = RunRegistry(tmp_path)
        nested = tmp_path / "walks"
        nested.mkdir()
        dead_tmp = nested / f"chunk.ckpt.npz.tmp.{dead_pid}"
        live_tmp = tmp_path / f"state.ckpt.npz.tmp.{os.getpid()}"
        odd_tmp = tmp_path / "notes.tmp.backup"
        for p in (dead_tmp, live_tmp, odd_tmp):
            p.write_bytes(b"x")
        summary = registry.sweep()
        assert summary["tmp_files_removed"] == 1
        assert not dead_tmp.exists()
        assert live_tmp.exists()  # in-flight write of a live process
        assert odd_tmp.exists()  # not a pid-suffixed tmp

    @pytest.mark.skipif(
        not Path(SHM_MOUNT).is_dir(), reason="no /dev/shm on this platform"
    )
    def test_orphaned_shm_segments_are_reclaimed(self, tmp_path, dead_pid):
        registry = RunRegistry(tmp_path)
        dead_seg = Path(SHM_MOUNT) / f"repro-{dead_pid}-deadbeef"
        live_seg = Path(SHM_MOUNT) / f"repro-{os.getpid()}-deadbeef"
        dead_seg.write_bytes(b"")
        live_seg.write_bytes(b"")
        try:
            summary = registry.sweep()
            assert dead_seg.name in summary["shm_segments_removed"]
            assert not dead_seg.exists()
            assert live_seg.exists()
        finally:
            dead_seg.unlink(missing_ok=True)
            live_seg.unlink(missing_ok=True)

    def test_clean_directory_sweep_is_quiet(self, tmp_path):
        with use(Recorder()) as rec:
            summary = RunRegistry(tmp_path).sweep()
        assert summary["orphaned_runs"] == []
        assert summary["tmp_files_removed"] == 0
        counters = rec.registry.snapshot()["counters"]
        assert counters.get("registry.orphans_swept", 0) == 0
