"""Tests for atomic checkpoint files and the CheckpointManager."""

import numpy as np
import pytest

from repro.resilience.checkpoint import (
    CheckpointManager,
    atomic_write_bytes,
    load_checkpoint,
    save_checkpoint,
)


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "blob.bin"
        atomic_write_bytes(path, b"x")
        assert path.read_bytes() == b"x"

    def test_no_tmp_leftovers(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]


class TestSaveLoadCheckpoint:
    def test_arrays_and_meta_roundtrip(self, tmp_path):
        path = tmp_path / "state.npz"
        w = np.arange(12, dtype=np.float64).reshape(3, 4)
        save_checkpoint(path, {"w": w}, {"epoch": 3, "big": 2**90, "t": None})
        ckpt = load_checkpoint(path)
        np.testing.assert_array_equal(ckpt.arrays["w"], w)
        assert ckpt.meta == {"epoch": 3, "big": 2**90, "t": None}

    def test_infinity_meta_roundtrips(self, tmp_path):
        # Trainer best_loss starts at +inf; it must survive the trip.
        path = tmp_path / "state.npz"
        save_checkpoint(path, {}, {"best": float("inf")})
        assert load_checkpoint(path).meta["best"] == float("inf")

    def test_rng_state_roundtrips_exactly(self, tmp_path):
        rng = np.random.default_rng(5)
        rng.random(17)  # advance
        path = tmp_path / "state.npz"
        save_checkpoint(path, {}, {"rng_state": rng.bit_generator.state})
        expected = rng.random(8)
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = load_checkpoint(path).meta["rng_state"]
        np.testing.assert_array_equal(fresh.random(8), expected)

    def test_meta_key_reserved(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x.npz", {"__meta__": np.zeros(1)})

    def test_empty_checkpoint(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_checkpoint(path)
        ckpt = load_checkpoint(path)
        assert ckpt.arrays == {} and ckpt.meta == {}


class TestCheckpointManager:
    def test_save_load_exists_delete(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "ckpt")
        assert not mgr.exists("run")
        mgr.save("run", {"a": np.ones(3)}, {"k": 1})
        assert mgr.exists("run")
        ckpt = mgr.load("run")
        np.testing.assert_array_equal(ckpt.arrays["a"], np.ones(3))
        assert ckpt.meta == {"k": 1}
        mgr.delete("run")
        assert not mgr.exists("run")

    def test_load_if_exists(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        assert mgr.load_if_exists("nope") is None
        mgr.save("yes")
        assert mgr.load_if_exists("yes") is not None

    def test_names_sorted(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for name in ("walks-0002", "walks-0000", "trainer"):
            mgr.save(name)
        assert mgr.names() == ["trainer", "walks-0000", "walks-0002"]
        assert list(mgr) == mgr.names()

    def test_names_on_missing_dir(self, tmp_path):
        assert CheckpointManager(tmp_path / "never").names() == []

    def test_invalid_names_rejected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                mgr.path_for(bad)

    def test_sweep_tmp_removes_torn_writes(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save("good")
        # Simulate a crash mid-write: a stale tmp file next to the real one.
        (tmp_path / "good.ckpt.npz.tmp.12345").write_bytes(b"torn")
        assert mgr.sweep_tmp() == 1
        assert mgr.names() == ["good"]
        assert mgr.load("good") is not None
