"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.core import EdgeList, Graph
from repro.graph.generators import planted_partition


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def triangle() -> Graph:
    """Undirected triangle 0-1-2."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Graph:
    """Undirected path 0-1-2-3."""
    return Graph(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def directed_chain() -> Graph:
    """Directed chain 0 -> 1 -> 2 -> 3 (3 is a dead end)."""
    return Graph(4, [(0, 1), (1, 2), (2, 3)], directed=True)


@pytest.fixture
def weighted_star() -> Graph:
    """Star centered at 0 with edge weights 1, 2, 3."""
    return Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)])


@pytest.fixture
def temporal_line() -> Graph:
    """Directed temporal chain with increasing timestamps."""
    return Graph(
        4,
        [(0, 1, 1.0, 10.0), (1, 2, 1.0, 20.0), (2, 3, 1.0, 30.0)],
        directed=True,
    )


@pytest.fixture
def two_cliques() -> Graph:
    """Two 4-cliques joined by a single bridge edge (3, 4)."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    edges.append((3, 4))
    g = Graph(8, edges)
    g.set_vertex_labels("community", np.asarray([0, 0, 0, 0, 1, 1, 1, 1]))
    return g


@pytest.fixture(scope="session")
def small_benchmark() -> Graph:
    """A small planted-partition graph with clear communities."""
    return planted_partition(n=120, groups=4, alpha=0.5, inter_edges=20, seed=7)
