"""Tests on Zachary's karate club — the classic real-world sanity check."""

import numpy as np
import pytest

from repro.datasets.karate import karate_club
from repro.graph.traversal import is_connected
from repro.ml.metrics import accuracy, adjusted_rand_index


@pytest.fixture(scope="module")
def karate():
    return karate_club()


class TestDataset:
    def test_canonical_shape(self, karate):
        assert karate.n == 34
        assert karate.num_edges == 78
        assert not karate.directed

    def test_connected(self, karate):
        assert is_connected(karate)

    def test_hubs_are_the_leaders(self, karate):
        deg = karate.out_degrees()
        top_two = set(np.argsort(-deg)[:2].tolist())
        assert top_two == {0, 33}  # instructor and administrator

    def test_faction_labels(self, karate):
        faction = karate.vertex_labels("faction")
        assert faction.shape == (34,)
        assert set(faction.tolist()) == {0, 1}
        assert faction[0] == 0 and faction[33] == 1

    def test_matches_networkx(self, karate):
        nx = pytest.importorskip("networkx")
        ref = nx.karate_club_graph()
        assert karate.num_edges == ref.number_of_edges()
        ours = {
            (int(min(u, v)), int(max(u, v)))
            for u, v in zip(karate.edge_list.src, karate.edge_list.dst)
        }
        theirs = {(min(u, v), max(u, v)) for u, v in ref.edges()}
        assert ours == theirs


class TestCommunityRecovery:
    def test_cnm_recovers_factions(self, karate):
        from repro.community import cnm_communities

        labels = cnm_communities(karate, target_communities=2)
        truth = karate.vertex_labels("faction")
        # The classic result: near-perfect split with one or two
        # borderline members (vertex 8 historically flips).
        best = max(
            accuracy(truth, labels), accuracy(truth, 1 - labels)
        )
        assert best > 0.85

    def test_louvain_modular(self, karate):
        from repro.community import louvain_communities
        from repro.graph.metrics import modularity

        labels = louvain_communities(karate, seed=0)
        assert modularity(karate, labels) > 0.35  # known optimum ≈ 0.42

    def test_v2v_recovers_factions(self, karate):
        from repro import V2V, V2VConfig
        from repro.ml import KMeans

        model = V2V(
            V2VConfig(
                dim=8, walks_per_vertex=20, walk_length=20, epochs=10,
                early_stop=False, seed=0,
            )
        ).fit(karate)
        labels = KMeans(2, n_init=30, seed=0).fit_predict(model.vectors)
        truth = karate.vertex_labels("faction")
        assert adjusted_rand_index(truth, labels) > 0.6

    def test_spectral_recovers_factions(self, karate):
        from repro.ml.spectral import spectral_communities

        labels = spectral_communities(karate, 2, seed=0)
        truth = karate.vertex_labels("faction")
        assert adjusted_rand_index(truth, labels) > 0.6
