"""Tests for the paper's synthetic benchmark dataset."""

import numpy as np
import pytest

from repro.datasets.synthetic import PAPER_ALPHAS, alpha_sweep, community_benchmark


class TestCommunityBenchmark:
    def test_paper_defaults(self):
        g = community_benchmark(0.3, seed=0)
        assert g.n == 1000
        assert np.bincount(g.vertex_labels("community")).tolist() == [100] * 10

    def test_scaled_down(self):
        g = community_benchmark(0.5, n=100, groups=5, inter_edges=10, seed=0)
        assert g.n == 100
        assert g.vertex_labels("community").max() == 4


class TestAlphaSweep:
    def test_paper_grid(self):
        assert PAPER_ALPHAS == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

    def test_sweep_yields_all(self):
        out = list(
            alpha_sweep((0.2, 0.8), n=60, groups=3, inter_edges=6, seed=0)
        )
        assert [a for a, _ in out] == [0.2, 0.8]
        assert out[0][1].num_edges < out[1][1].num_edges

    def test_sweep_reproducible(self):
        a = list(alpha_sweep((0.5,), n=60, groups=3, inter_edges=6, seed=1))
        b = list(alpha_sweep((0.5,), n=60, groups=3, inter_edges=6, seed=1))
        np.testing.assert_array_equal(
            a[0][1].edge_list.src, b[0][1].edge_list.src
        )

    def test_sweep_graphs_independent(self):
        out = list(alpha_sweep((0.5, 0.5), n=60, groups=3, inter_edges=6, seed=0))
        assert not np.array_equal(
            out[0][1].edge_list.src, out[1][1].edge_list.src
        )
