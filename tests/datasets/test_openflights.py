"""Tests for the synthetic OpenFlights substitute."""

import numpy as np
import pytest

from repro.datasets.openflights import (
    CONTINENTS,
    OpenFlightsSpec,
    great_circle,
    synthetic_openflights,
)
from repro.graph.traversal import connected_components


@pytest.fixture(scope="module")
def flights():
    return synthetic_openflights(OpenFlightsSpec(num_airports=400, seed=0))


class TestGreatCircle:
    def test_zero_distance(self):
        assert great_circle(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_antipodal_half_circumference(self):
        d = great_circle(0.0, 0.0, 0.0, 180.0)
        assert np.isclose(d, np.pi * 6371.0, rtol=1e-6)

    def test_known_distance(self):
        # London (51.5, -0.13) to Paris (48.85, 2.35) ≈ 344 km.
        d = great_circle(51.5, -0.13, 48.85, 2.35)
        assert 330 < d < 360

    def test_symmetry(self):
        assert np.isclose(
            great_circle(10.0, 20.0, -30.0, 50.0),
            great_circle(-30.0, 50.0, 10.0, 20.0),
        )

    def test_broadcasting(self):
        lats = np.asarray([0.0, 10.0])
        d = great_circle(lats[:, None], 0.0, lats[None, :], 0.0)
        assert d.shape == (2, 2)
        assert d[0, 0] == 0.0


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            OpenFlightsSpec(num_airports=5)
        with pytest.raises(ValueError):
            OpenFlightsSpec(countries_per_continent=0)
        with pytest.raises(ValueError):
            OpenFlightsSpec(routes_per_airport=0)
        with pytest.raises(ValueError):
            OpenFlightsSpec(decay_length_km=0)
        with pytest.raises(ValueError):
            OpenFlightsSpec(hub_exponent=1.0)


class TestSyntheticOpenFlights:
    def test_directed_graph(self, flights):
        assert flights.directed
        assert flights.n == 400

    def test_labels_present(self, flights):
        for name in ("continent", "country", "lat", "lon"):
            assert name in flights.label_names

    def test_all_continents_present(self, flights):
        names = set(flights.vertex_labels("continent").tolist())
        assert names == {c[0] for c in CONTINENTS}

    def test_country_prefix_matches_continent(self, flights):
        continents = flights.vertex_labels("continent")
        countries = flights.vertex_labels("country")
        for cont, country in zip(continents, countries):
            assert country.startswith(cont + "-")

    def test_coordinates_valid(self, flights):
        lat = flights.vertex_labels("lat")
        lon = flights.vertex_labels("lon")
        assert np.all((lat >= -90) & (lat <= 90))
        assert np.all((lon >= -180) & (lon <= 180))

    def test_mean_out_degree_near_spec(self, flights):
        deg = flights.out_degrees()
        assert 4.0 < deg.mean() < 8.0  # spec default 6

    def test_hubs_exist(self, flights):
        deg = flights.out_degrees()
        assert deg.max() >= 3 * deg.mean()

    def test_routes_geographically_local(self, flights):
        """Most routes must be intra-continental — the property that
        makes continents recoverable from topology (Figs 8-10)."""
        continents = flights.vertex_labels("continent")
        src, dst = flights.arc_array()
        intra = (continents[src] == continents[dst]).mean()
        assert intra > 0.5

    def test_weakly_connected_mostly(self, flights):
        comp = connected_components(flights)
        largest = np.bincount(comp).max()
        assert largest > 0.9 * flights.n

    def test_no_self_loops(self, flights):
        src, dst = flights.arc_array()
        assert np.all(src != dst)

    def test_reproducible(self):
        a = synthetic_openflights(OpenFlightsSpec(num_airports=100, seed=5))
        b = synthetic_openflights(OpenFlightsSpec(num_airports=100, seed=5))
        np.testing.assert_array_equal(a.edge_list.src, b.edge_list.src)
        np.testing.assert_array_equal(
            a.vertex_labels("continent"), b.vertex_labels("continent")
        )

    def test_seeds_differ(self):
        a = synthetic_openflights(OpenFlightsSpec(num_airports=100, seed=1))
        b = synthetic_openflights(OpenFlightsSpec(num_airports=100, seed=2))
        assert not np.array_equal(a.edge_list.dst, b.edge_list.dst)
