"""Tests for the benchmark harness utilities."""

import time

import numpy as np
import pytest

from repro.bench.harness import (
    ExperimentRecord,
    Timer,
    format_series,
    format_table,
    write_records_csv,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.02)
        assert 0.015 < t.seconds < 1.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.seconds
        with t:
            time.sleep(0.01)
        assert t.seconds >= first


class TestExperimentRecord:
    def test_row_merges_params_and_values(self):
        r = ExperimentRecord(params={"alpha": 0.1}, values={"p": 0.9})
        assert r.row() == {"alpha": 0.1, "p": 0.9}

    def test_defaults_empty(self):
        assert ExperimentRecord().row() == {}


class TestFormatTable:
    def records(self):
        return [
            ExperimentRecord({"alpha": 0.1}, {"precision": 0.95}),
            ExperimentRecord({"alpha": 1.0}, {"precision": 1.0}),
        ]

    def test_contains_all_cells(self):
        out = format_table(self.records(), title="T")
        assert "T" in out
        assert "alpha" in out and "precision" in out
        assert "0.95" in out and "0.1" in out

    def test_column_union_across_records(self):
        recs = [
            ExperimentRecord({"a": 1}, {"x": 2.0}),
            ExperimentRecord({"a": 2}, {"y": 3.0}),
        ]
        out = format_table(recs)
        assert "x" in out and "y" in out

    def test_explicit_columns(self):
        out = format_table(self.records(), columns=["precision"])
        assert "alpha" not in out

    def test_empty(self):
        assert format_table([]) == "(no records)"

    def test_number_formatting(self):
        recs = [ExperimentRecord({}, {"v": 0.000012345, "w": 123456.0, "z": 0.5})]
        out = format_table(recs)
        assert "1.234e-05" in out or "1.235e-05" in out
        assert "0.5" in out

    def test_aligned_columns(self):
        out = format_table(self.records())
        lines = out.split("\n")
        assert len(set(len(l) for l in lines[:3])) == 1  # header/sep/first row


class TestFormatSeries:
    def test_groups_by_series_key(self):
        recs = [
            ExperimentRecord({"dim": 10, "alpha": 0.1}, {"value": 0.8}),
            ExperimentRecord({"dim": 10, "alpha": 0.5}, {"value": 0.9}),
            ExperimentRecord({"dim": 20, "alpha": 0.1}, {"value": 0.85}),
        ]
        out = format_series("alpha", recs, series_key="dim")
        assert "[dim=10]" in out and "[dim=20]" in out
        assert "0.8, 0.9" in out

    def test_no_series_key(self):
        recs = [ExperimentRecord({"x": 1}, {"value": 2.0})]
        out = format_series("x", recs)
        assert "[series]" in out

    def test_custom_value_name(self):
        recs = [ExperimentRecord({"x": 1}, {"acc": 0.7})]
        out = format_series("x", recs, value="acc")
        assert "acc: 0.7" in out

    def test_empty(self):
        assert format_series("x", []) == "(no records)"


class TestCSV:
    def test_roundtrip_columns(self, tmp_path):
        recs = [
            ExperimentRecord({"a": 1}, {"x": 2.5}),
            ExperimentRecord({"a": 2}, {"x": 3.5, "y": 1.0}),
        ]
        p = tmp_path / "out.csv"
        write_records_csv(recs, p)
        lines = p.read_text().strip().split("\n")
        assert lines[0] == "a,x,y"
        assert lines[1].startswith("1,2.5")
        assert lines[2] == "2,3.5,1"

    def test_empty(self, tmp_path):
        p = tmp_path / "empty.csv"
        write_records_csv([], p)
        assert p.read_text() == ""
