"""Tests for Huffman coding."""

import numpy as np
import pytest

from repro.core.huffman import build_huffman


class TestBuildHuffman:
    def test_two_leaves(self):
        coding = build_huffman(np.asarray([5, 3]))
        assert coding.num_inner == 1
        assert coding.depths.tolist() == [1, 1]
        # Codes must differ at the single inner node.
        assert coding.codes[0, 0] != coding.codes[1, 0]

    def test_frequent_gets_short_code(self):
        counts = np.asarray([100, 1, 1, 1, 1])
        coding = build_huffman(counts)
        assert coding.depths[0] == coding.depths.min()
        assert coding.depths[0] < coding.depths[1]

    def test_prefix_free(self):
        counts = np.asarray([7, 5, 3, 2, 1, 1])
        coding = build_huffman(counts)
        codes = []
        for v in range(6):
            d = int(coding.depths[v])
            codes.append(tuple(coding.codes[v, :d].tolist()))
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert a[: len(b)] != b or len(a) == len(b) and a != b

    def test_codes_unique(self):
        counts = np.asarray([4, 3, 2, 1])
        coding = build_huffman(counts)
        paths = set()
        for v in range(4):
            d = int(coding.depths[v])
            paths.add(tuple(coding.codes[v, :d].tolist()))
        assert len(paths) == 4

    def test_expected_length_optimal_uniform(self):
        # 4 equal counts -> perfectly balanced tree, depth 2 everywhere.
        coding = build_huffman(np.full(4, 10))
        assert np.all(coding.depths == 2)
        assert coding.num_inner == 3

    def test_zero_count_ids_have_no_path(self):
        coding = build_huffman(np.asarray([3, 0, 2]))
        assert coding.depths[1] == 0
        assert np.all(coding.codes[1] == -1)

    def test_single_leaf(self):
        coding = build_huffman(np.asarray([0, 7, 0]))
        # One leaf: no merges, empty code, but num_inner floors at 1
        # so the output matrix is well-formed.
        assert coding.depths[1] == 0
        assert coding.num_inner == 1

    def test_points_within_inner_range(self):
        counts = np.asarray([9, 8, 7, 6, 5, 4, 3, 2, 1])
        coding = build_huffman(counts)
        for v in range(9):
            d = int(coding.depths[v])
            pts = coding.points[v, :d]
            assert np.all(pts >= 0)
            assert np.all(pts < coding.num_inner)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            build_huffman(np.zeros(3, dtype=np.int64))

    def test_kraft_inequality_equality(self):
        # A full binary tree satisfies sum(2^-depth) == 1.
        counts = np.asarray([13, 11, 7, 5, 3, 2])
        coding = build_huffman(counts)
        kraft = sum(2.0 ** -int(d) for d in coding.depths if d > 0)
        assert np.isclose(kraft, 1.0)

    def test_deterministic(self):
        counts = np.asarray([5, 5, 5, 5])
        a = build_huffman(counts)
        b = build_huffman(counts)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_array_equal(a.points, b.points)

    def test_weighted_path_length_optimal(self):
        # Huffman minimizes sum(count * depth); compare against the
        # known optimum for this classic example.
        counts = np.asarray([45, 13, 12, 16, 9, 5])
        coding = build_huffman(counts)
        cost = int((counts * coding.depths).sum())
        assert cost == 224  # CLRS example optimum
