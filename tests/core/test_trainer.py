"""Tests for the training loop."""

import numpy as np
import pytest

from repro.core.trainer import TrainConfig, train_embeddings
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, generate_walks
from repro.graph.generators import planted_partition


def tiny_corpus(rng, num_vertices=12, walks=60, length=10, groups=2):
    """Corpus where walks stay inside vertex groups (strong structure)."""
    size = num_vertices // groups
    rows = np.zeros((walks, length), dtype=np.int64)
    for i in range(walks):
        g = i % groups
        rows[i] = g * size + rng.integers(0, size, length)
    return WalkCorpus(rows, num_vertices=num_vertices)


class TestTrainConfig:
    def test_defaults_match_paper(self):
        c = TrainConfig()
        assert c.window == 5
        assert c.objective == "cbow"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"window": 0},
            {"objective": "glove"},
            {"output_layer": "softmax"},
            {"objective": "skipgram", "output_layer": "hierarchical"},
            {"epochs": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"lr_min": 1.0, "lr": 0.5},
            {"negatives": 0},
            {"tol": -1.0},
            {"patience": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs)


class TestTrainEmbeddings:
    def test_result_shape(self, rng):
        corpus = tiny_corpus(rng)
        res = train_embeddings(corpus, TrainConfig(dim=7, epochs=2, seed=0))
        assert res.vectors.shape == (12, 7)
        assert res.epochs_run == len(res.loss_history) == 2
        assert res.train_seconds > 0

    def test_loss_decreases(self, rng):
        corpus = tiny_corpus(rng, walks=100)
        res = train_embeddings(
            corpus, TrainConfig(dim=8, epochs=8, seed=0, early_stop=False)
        )
        assert res.loss_history[-1] < res.loss_history[0]

    def test_deterministic_given_seed(self, rng):
        corpus = tiny_corpus(rng)
        a = train_embeddings(corpus, TrainConfig(dim=5, epochs=2, seed=9))
        b = train_embeddings(corpus, TrainConfig(dim=5, epochs=2, seed=9))
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_seeds_differ(self, rng):
        corpus = tiny_corpus(rng)
        a = train_embeddings(corpus, TrainConfig(dim=5, epochs=2, seed=1))
        b = train_embeddings(corpus, TrainConfig(dim=5, epochs=2, seed=2))
        assert not np.array_equal(a.vectors, b.vectors)

    def test_empty_corpus_rejected(self):
        corpus = WalkCorpus(np.empty((0, 4), dtype=np.int64), num_vertices=3)
        with pytest.raises(ValueError):
            train_embeddings(corpus, TrainConfig())

    def test_no_examples_rejected(self):
        # Single-token walks produce no (center, context) pairs.
        corpus = WalkCorpus(
            np.asarray([[0, -1], [1, -1]], dtype=np.int64), num_vertices=2
        )
        with pytest.raises(ValueError):
            train_embeddings(corpus, TrainConfig())

    def test_early_stopping_triggers(self, rng):
        corpus = tiny_corpus(rng, walks=40)
        res = train_embeddings(
            corpus,
            TrainConfig(dim=4, epochs=50, seed=0, tol=0.5, patience=1),
        )
        assert res.converged
        assert res.epochs_run < 50

    def test_early_stop_disabled_runs_all(self, rng):
        corpus = tiny_corpus(rng, walks=30)
        res = train_embeddings(
            corpus, TrainConfig(dim=4, epochs=4, seed=0, early_stop=False)
        )
        assert res.epochs_run == 4
        assert not res.converged

    def test_hierarchical_softmax_path(self, rng):
        corpus = tiny_corpus(rng)
        res = train_embeddings(
            corpus,
            TrainConfig(dim=6, epochs=3, seed=0, output_layer="hierarchical"),
        )
        assert res.vectors.shape == (12, 6)
        assert res.loss_history[-1] <= res.loss_history[0]

    def test_skipgram_path(self, rng):
        corpus = tiny_corpus(rng)
        res = train_embeddings(
            corpus, TrainConfig(dim=6, epochs=3, seed=0, objective="skipgram")
        )
        assert res.vectors.shape == (12, 6)

    def test_subsampling_path(self, rng):
        corpus = tiny_corpus(rng)
        res = train_embeddings(
            corpus, TrainConfig(dim=4, epochs=2, seed=0, subsample=1e-2)
        )
        assert res.vectors.shape == (12, 4)

    def test_group_structure_learned(self, rng):
        """Vertices co-walking in groups end up more similar in-group."""
        corpus = tiny_corpus(rng, num_vertices=12, walks=200, length=12)
        res = train_embeddings(
            corpus, TrainConfig(dim=10, epochs=10, seed=0, early_stop=False)
        )
        x = res.vectors
        x = x / np.linalg.norm(x, axis=1, keepdims=True)
        sims = x @ x.T
        intra = (sims[:6, :6].mean() + sims[6:, 6:].mean()) / 2
        inter = sims[:6, 6:].mean()
        assert intra > inter + 0.2

    def test_unseen_vertices_keep_init(self, rng):
        # Vertex universe larger than observed tokens.
        rows = np.asarray([[0, 1, 0, 1]], dtype=np.int64)
        corpus = WalkCorpus(rows, num_vertices=5)
        res = train_embeddings(corpus, TrainConfig(dim=4, epochs=2, seed=0))
        # Rows 2..4 never trained: tiny init scale preserved.
        assert np.abs(res.vectors[2:]).max() <= 0.5 / 4 + 1e-12


class TestGraphIntegration:
    def test_training_time_decreases_with_alpha(self):
        """Fig 7 mechanism: stronger structure converges in fewer epochs."""
        epochs = {}
        for alpha in (0.1, 0.9):
            g = planted_partition(n=200, groups=4, alpha=alpha, inter_edges=40, seed=0)
            corpus = generate_walks(
                g, RandomWalkConfig(walks_per_vertex=5, walk_length=20, seed=0)
            )
            res = train_embeddings(
                corpus,
                TrainConfig(dim=16, epochs=30, seed=0, tol=5e-3, patience=2),
            )
            epochs[alpha] = res.epochs_run
        assert epochs[0.9] <= epochs[0.1]
