"""Tests for the high-level V2V estimator."""

import numpy as np
import pytest

from repro.core.model import V2V, V2VConfig
from repro.graph.generators import planted_partition
from repro.walks.engine import WalkMode


@pytest.fixture(scope="module")
def fitted():
    g = planted_partition(n=60, groups=3, alpha=0.6, inter_edges=10, seed=0)
    cfg = V2VConfig(dim=12, walks_per_vertex=5, walk_length=15, epochs=4, seed=0)
    return g, V2V(cfg).fit(g)


class TestConfig:
    def test_defaults(self):
        c = V2VConfig()
        assert c.window == 5
        assert c.walk_mode is WalkMode.UNIFORM

    def test_with_dim(self):
        c = V2VConfig(dim=10, seed=3).with_dim(99)
        assert c.dim == 99
        assert c.seed == 3

    def test_subconfigs_consistent(self):
        c = V2VConfig(dim=33, window=4, walks_per_vertex=7, seed=5)
        assert c.walk_config().walks_per_vertex == 7
        assert c.walk_config().seed == 5
        assert c.train_config().dim == 33
        assert c.train_config().window == 4


class TestFit:
    def test_vectors_shape(self, fitted):
        g, model = fitted
        assert model.vectors.shape == (60, 12)
        assert model.is_fitted

    def test_unfitted_raises(self):
        m = V2V()
        assert not m.is_fitted
        with pytest.raises(RuntimeError):
            _ = m.vectors
        with pytest.raises(RuntimeError):
            _ = m.corpus

    def test_corpus_retained(self, fitted):
        _g, model = fitted
        assert model.corpus.num_walks == 60 * 5

    def test_fit_corpus_reuse(self, fitted):
        """Training different dims on the same corpus (paper Section V)."""
        _g, model = fitted
        other = V2V(V2VConfig(dim=6, epochs=2, seed=0)).fit_corpus(model.corpus)
        assert other.vectors.shape == (60, 6)

    def test_reproducible(self):
        g = planted_partition(n=40, groups=2, alpha=0.5, inter_edges=5, seed=1)
        cfg = V2VConfig(dim=8, walks_per_vertex=3, walk_length=10, epochs=2, seed=7)
        a = V2V(cfg).fit(g)
        b = V2V(cfg).fit(g)
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_embedding_for_bounds(self, fitted):
        _g, model = fitted
        assert model.embedding_for(0).shape == (12,)
        with pytest.raises(IndexError):
            model.embedding_for(60)
        with pytest.raises(IndexError):
            model.embedding_for(-1)


class TestSimilarity:
    def test_self_similarity_one(self, fitted):
        _g, model = fitted
        assert np.isclose(model.similarity(3, 3), 1.0)

    def test_symmetric(self, fitted):
        _g, model = fitted
        assert np.isclose(model.similarity(1, 2), model.similarity(2, 1))

    def test_range(self, fitted):
        _g, model = fitted
        for u, v in [(0, 1), (0, 30), (10, 55)]:
            assert -1.0 - 1e-9 <= model.similarity(u, v) <= 1.0 + 1e-9

    def test_most_similar_excludes_self(self, fitted):
        _g, model = fitted
        top = model.most_similar(5, topn=10)
        assert len(top) == 10
        assert all(v != 5 for v, _ in top)
        sims = [s for _, s in top]
        assert sims == sorted(sims, reverse=True)

    def test_most_similar_prefers_own_community(self, fitted):
        g, model = fitted
        truth = g.vertex_labels("community")
        hits = 0
        for v in range(0, 60, 10):
            top = model.most_similar(v, topn=5)
            hits += sum(truth[u] == truth[v] for u, _ in top)
        assert hits >= 20  # of 30 possible

    def test_topn_clamped(self, fitted):
        _g, model = fitted
        assert len(model.most_similar(0, topn=500)) == 59

    def test_zero_vector_similarity(self):
        m = V2V()
        from repro.core.trainer import EmbeddingResult, TrainConfig

        vecs = np.zeros((3, 4))
        vecs[1, 0] = 1.0
        m._result = EmbeddingResult(
            vectors=vecs, loss_history=[1.0], epochs_run=1,
            train_seconds=0.0, converged=False, config=TrainConfig(),
        )
        assert m.similarity(0, 1) == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, fitted, tmp_path):
        _g, model = fitted
        p = tmp_path / "model.npz"
        model.save(p)
        loaded = V2V.load(p)
        np.testing.assert_array_equal(loaded.vectors, model.vectors)
        assert loaded.result.epochs_run == model.result.epochs_run

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            V2V().save(tmp_path / "x.npz")

    def test_load_restores_embedded_config(self, fitted, tmp_path):
        _g, model = fitted
        p = tmp_path / "model.npz"
        model.save(p)
        loaded = V2V.load(p)
        assert loaded.config == model.config

    def test_load_explicit_config_wins(self, fitted, tmp_path):
        _g, model = fitted
        p = tmp_path / "model.npz"
        model.save(p)
        override = V2VConfig(dim=12, seed=99)
        assert V2V.load(p, config=override).config is override

    def test_load_legacy_file_without_config(self, fitted, tmp_path):
        """Files saved before config embedding still load (default config)."""
        _g, model = fitted
        p = tmp_path / "legacy.npz"
        result = model.result
        np.savez_compressed(
            p,
            vectors=np.asarray(result.vectors),
            loss_history=np.asarray(result.loss_history),
            epochs_run=np.asarray(result.epochs_run),
            converged=np.asarray(int(result.converged)),
        )
        loaded = V2V.load(p)
        np.testing.assert_array_equal(loaded.vectors, model.vectors)
        assert loaded.config == V2VConfig()


class TestConfigSerialization:
    def test_json_roundtrip(self):
        cfg = V2VConfig(
            dim=7,
            walk_mode=WalkMode.NODE2VEC,
            p=0.5,
            q=2.0,
            seed=4,
        )
        assert V2VConfig.from_json(cfg.to_json()) == cfg

    def test_to_dict_excludes_observability(self):
        from repro.obs.recorder import ObsConfig

        cfg = V2VConfig(observability=ObsConfig(enabled=True))
        assert "observability" not in cfg.to_dict()

    def test_walk_mode_serializes_as_string(self):
        data = V2VConfig(walk_mode=WalkMode.TEMPORAL, time_window=2.0).to_dict()
        assert data["walk_mode"] == "temporal"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown V2VConfig keys: bogus"):
            V2VConfig.from_dict({"dim": 5, "bogus": 1})

    def test_canonical_ordering(self):
        # sort_keys makes the encoding canonical: equal configs, equal text
        assert V2VConfig(seed=1).to_json() == V2VConfig(seed=1).to_json()
