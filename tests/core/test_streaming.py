"""Tests for memory-bounded streaming training."""

import numpy as np
import pytest

from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, generate_walks


@pytest.fixture(scope="module")
def corpus():
    g = planted_partition(n=90, groups=3, alpha=0.6, inter_edges=12, seed=0)
    return generate_walks(
        g, RandomWalkConfig(walks_per_vertex=6, walk_length=20, seed=0)
    )


class TestContextBatches:
    def test_batches_union_equals_full(self, corpus):
        full_centers, full_contexts = corpus.context_arrays(3)
        got_centers, got_contexts = [], []
        for c, ctx in corpus.context_batches(3, rows_per_batch=7):
            got_centers.append(c)
            got_contexts.append(ctx)
        centers = np.concatenate(got_centers)
        contexts = np.vstack(got_contexts)
        np.testing.assert_array_equal(centers, full_centers)
        np.testing.assert_array_equal(contexts, full_contexts)

    def test_single_row_batches(self, corpus):
        total = sum(
            c.shape[0] for c, _ in corpus.context_batches(2, rows_per_batch=1)
        )
        assert total == corpus.context_arrays(2)[0].shape[0]

    def test_invalid_rows_per_batch(self, corpus):
        with pytest.raises(ValueError):
            list(corpus.context_batches(2, rows_per_batch=0))

    def test_num_examples_exact(self, corpus):
        assert corpus.num_examples(5) == corpus.context_arrays(5)[0].shape[0]

    def test_num_examples_excludes_singletons(self):
        walks = np.asarray([[0, 1, 2], [3, -1, -1]], dtype=np.int64)
        c = WalkCorpus(walks, num_vertices=5)
        assert c.num_examples(2) == 3  # the singleton walk contributes 0

    def test_num_examples_validation(self, corpus):
        with pytest.raises(ValueError):
            corpus.num_examples(0)


class TestStreamingTraining:
    def test_same_shape_as_batch(self, corpus):
        res = train_embeddings(
            corpus,
            TrainConfig(dim=8, epochs=2, seed=0, streaming=True, stream_rows=32),
        )
        assert res.vectors.shape == (90, 8)
        assert res.epochs_run == 2

    def test_loss_decreases(self, corpus):
        res = train_embeddings(
            corpus,
            TrainConfig(
                dim=10, epochs=6, seed=0, streaming=True, stream_rows=64,
                early_stop=False,
            ),
        )
        assert res.loss_history[-1] < res.loss_history[0]

    def test_quality_matches_batch_mode(self, corpus):
        """Streaming's hierarchical shuffle must reach the same quality
        band as the fully-shuffled batch path."""
        from repro.ml import KMeans, pairwise_precision_recall

        g = planted_partition(n=90, groups=3, alpha=0.6, inter_edges=12, seed=0)
        truth = g.vertex_labels("community")
        scores = {}
        for streaming in (False, True):
            cfg = TrainConfig(
                dim=12, epochs=6, seed=0, streaming=streaming,
                stream_rows=32, early_stop=False,
            )
            res = train_embeddings(corpus, cfg)
            labels = KMeans(3, n_init=10, seed=0).fit_predict(res.vectors)
            scores[streaming] = pairwise_precision_recall(truth, labels)[0]
        assert scores[True] > scores[False] - 0.1
        assert scores[True] > 0.85

    def test_streaming_with_subsample(self, corpus):
        res = train_embeddings(
            corpus,
            TrainConfig(
                dim=6, epochs=2, seed=0, streaming=True, subsample=1e-2
            ),
        )
        assert res.vectors.shape == (90, 6)

    def test_streaming_early_stop(self, corpus):
        res = train_embeddings(
            corpus,
            TrainConfig(
                dim=6, epochs=40, seed=0, streaming=True, tol=0.5, patience=1
            ),
        )
        assert res.converged
        assert res.epochs_run < 40

    def test_stream_rows_validated(self):
        with pytest.raises(ValueError):
            TrainConfig(stream_rows=0)

    def test_empty_examples_rejected(self):
        singleton = WalkCorpus(
            np.asarray([[0, -1]], dtype=np.int64), num_vertices=2
        )
        with pytest.raises(ValueError):
            train_embeddings(
                singleton, TrainConfig(dim=4, epochs=1, streaming=True)
            )

    def test_v2v_config_streaming_passthrough(self):
        from repro import V2VConfig

        cfg = V2VConfig(streaming=True, stream_rows=77)
        tc = cfg.train_config()
        assert tc.streaming and tc.stream_rows == 77
