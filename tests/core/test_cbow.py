"""Tests for the CBOW objectives, including numerical gradient checks."""

import numpy as np
import pytest

from repro.core._math import sigmoid
from repro.core.cbow import CBOWHierarchicalSoftmax, CBOWNegativeSampling
from repro.core.huffman import build_huffman
from repro.core.negative import NegativeSampler


class FixedSampler:
    """Duck-typed sampler returning a constant negative set (for exact
    gradient verification, which needs deterministic negatives)."""

    def __init__(self, vocab_size, fixed):
        self.vocab_size = vocab_size
        self._fixed = np.asarray(fixed, dtype=np.int64)

    def sample(self, shape, rng, avoid=None, max_retries=0):
        return np.broadcast_to(self._fixed, shape).copy()


def uniform_sampler(v):
    return NegativeSampler(np.ones(v) / v)


class TestConstruction:
    def test_shapes(self):
        m = CBOWNegativeSampling(10, 4, uniform_sampler(10))
        assert m.w_in.shape == (10, 4)
        assert m.w_out.shape == (10, 4)
        assert m.vectors is m.w_in

    def test_validation(self):
        with pytest.raises(ValueError):
            CBOWNegativeSampling(0, 4, uniform_sampler(1))
        with pytest.raises(ValueError):
            CBOWNegativeSampling(10, 0, uniform_sampler(10))
        with pytest.raises(ValueError):
            CBOWNegativeSampling(10, 4, uniform_sampler(5))
        with pytest.raises(ValueError):
            CBOWNegativeSampling(10, 4, uniform_sampler(10), negatives=0)

    def test_init_scale(self):
        m = CBOWNegativeSampling(100, 50, uniform_sampler(100), rng=np.random.default_rng(0))
        assert np.abs(m.w_in).max() <= 0.5 / 50
        assert np.all(m.w_out == 0.0)


class TestNegativeSamplingGradients:
    def _loss(self, w_in, w_out, center, contexts, negs):
        h = w_in[contexts].mean(axis=0)
        pos = float(h @ w_out[center])
        loss = -np.log(sigmoid(np.asarray([pos])))[0]
        for k in negs:
            loss -= np.log(sigmoid(np.asarray([-(h @ w_out[k])])))[0]
        return loss

    def test_gradient_check(self):
        """The SGD update must equal -lr * dL/dparam to first order."""
        rng = np.random.default_rng(0)
        v, d = 6, 5
        negs = [3, 4]
        m = CBOWNegativeSampling(
            v, d, FixedSampler(v, negs), negatives=2, rng=rng
        )
        m.w_in = rng.normal(size=(v, d)) * 0.3
        m.w_out = rng.normal(size=(v, d)) * 0.3
        center = np.asarray([0])
        contexts = np.asarray([[1, 2, -1]])
        lr = 1e-6
        w_in0, w_out0 = m.w_in.copy(), m.w_out.copy()
        m.batch_step(center, contexts, lr, rng)
        analytic_in = (m.w_in - w_in0) / lr
        analytic_out = (m.w_out - w_out0) / lr

        eps = 1e-6
        for mat, grad in ((w_in0, analytic_in), (w_out0, analytic_out)):
            which_in = mat is w_in0
            num = np.zeros_like(mat)
            for i in range(v):
                for j in range(d):
                    for sign in (+1, -1):
                        wi = w_in0.copy()
                        wo = w_out0.copy()
                        (wi if which_in else wo)[i, j] += sign * eps
                        val = self._loss(wi, wo, 0, [1, 2], negs)
                        num[i, j] += sign * val
            num /= 2 * eps
            np.testing.assert_allclose(grad, -num, atol=1e-4)

    def test_loss_decreases_under_training(self, rng):
        v, d = 20, 8
        m = CBOWNegativeSampling(v, d, uniform_sampler(v), rng=rng)
        centers = rng.integers(0, 10, 200)
        contexts = (centers[:, None] + rng.integers(1, 3, (200, 4))) % 10
        losses = [m.batch_step(centers, contexts, 0.02, rng) for _ in range(30)]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_loss_positive(self, rng):
        m = CBOWNegativeSampling(10, 4, uniform_sampler(10), rng=rng)
        loss = m.batch_step(
            np.asarray([0, 1]), np.asarray([[2, 3], [4, -1]]), 0.01, rng
        )
        assert loss > 0

    def test_untouched_rows_unchanged(self, rng):
        v = 10
        m = CBOWNegativeSampling(v, 4, FixedSampler(v, [5]), negatives=1, rng=rng)
        before = m.w_in.copy()
        m.batch_step(np.asarray([0]), np.asarray([[1, 2]]), 0.1, rng)
        # w_in rows other than the contexts {1, 2} must not move.
        moved = np.any(m.w_in != before, axis=1)
        assert set(np.flatnonzero(moved).tolist()) <= {1, 2}


class TestHierarchicalSoftmax:
    def _model(self, counts, d=5, rng=None):
        rng = rng or np.random.default_rng(0)
        coding = build_huffman(np.asarray(counts))
        return CBOWHierarchicalSoftmax(len(counts), d, coding, rng=rng), coding

    def test_shapes(self):
        m, coding = self._model([3, 2, 1, 1])
        assert m.w_out.shape == (coding.num_inner, 5)

    def test_coding_mismatch_rejected(self):
        coding = build_huffman(np.asarray([1, 1]))
        with pytest.raises(ValueError):
            CBOWHierarchicalSoftmax(3, 4, coding)

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        counts = [5, 4, 3, 2]
        m, coding = self._model(counts, d=4, rng=rng)
        m.w_in = rng.normal(size=m.w_in.shape) * 0.3
        m.w_out = rng.normal(size=m.w_out.shape) * 0.3

        def loss_fn(wi, wo, center, ctx):
            h = wi[ctx].mean(axis=0)
            total = 0.0
            depth = int(coding.depths[center])
            for step in range(depth):
                code = coding.codes[center, step]
                point = coding.points[center, step]
                s = float(h @ wo[point])
                p = sigmoid(np.asarray([s if code == 0 else -s]))[0]
                total -= np.log(p)
            return total

        lr = 1e-6
        w_in0, w_out0 = m.w_in.copy(), m.w_out.copy()
        m.batch_step(np.asarray([0]), np.asarray([[1, 3, -1]]), lr, rng)
        analytic_in = (m.w_in - w_in0) / lr
        analytic_out = (m.w_out - w_out0) / lr

        eps = 1e-6
        num_in = np.zeros_like(w_in0)
        num_out = np.zeros_like(w_out0)
        for mat, num in ((w_in0, num_in), (w_out0, num_out)):
            which_in = mat is w_in0
            for i in range(mat.shape[0]):
                for j in range(mat.shape[1]):
                    vals = []
                    for sign in (+1, -1):
                        wi, wo = w_in0.copy(), w_out0.copy()
                        (wi if which_in else wo)[i, j] += sign * eps
                        vals.append(loss_fn(wi, wo, 0, [1, 3]))
                    num[i, j] = (vals[0] - vals[1]) / (2 * eps)
        np.testing.assert_allclose(analytic_in, -num_in, atol=1e-4)
        np.testing.assert_allclose(analytic_out, -num_out, atol=1e-4)

    def test_loss_decreases(self, rng):
        counts = np.ones(12, dtype=np.int64) * 5
        coding = build_huffman(counts)
        m = CBOWHierarchicalSoftmax(12, 6, coding, rng=rng)
        centers = rng.integers(0, 6, 300)
        contexts = (centers[:, None] + rng.integers(1, 3, (300, 4))) % 6
        losses = [m.batch_step(centers, contexts, 0.02, rng) for _ in range(30)]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_zero_depth_center_noop(self, rng):
        # Vertex 2 never occurs -> empty code -> no update, zero loss.
        coding = build_huffman(np.asarray([3, 3, 0]))
        m = CBOWHierarchicalSoftmax(3, 4, coding, rng=rng)
        before_out = m.w_out.copy()
        loss = m.batch_step(np.asarray([2]), np.asarray([[0, 1]]), 0.1, rng)
        assert loss == 0.0
        np.testing.assert_array_equal(m.w_out, before_out)
