"""Fail-fast validation of the end-to-end V2VConfig."""

import pytest

from repro import V2VConfig, WalkMode


class TestV2VConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"window": 0},
            {"walks_per_vertex": 0},
            {"walk_length": 0},
            {"epochs": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"negatives": 0},
            {"objective": "glove"},
            {"output_layer": "softmax"},
            {"objective": "skipgram", "output_layer": "hierarchical"},
            {"p": 0.0, "walk_mode": WalkMode.NODE2VEC},
            {"q": -1.0, "walk_mode": WalkMode.NODE2VEC},
            {"p": 2.0},  # p/q without node2vec mode
            {"time_window": 5.0},  # window without temporal mode
            {"time_window": -1.0, "walk_mode": WalkMode.TEMPORAL},
            {"stream_rows": 0},
            {"patience": 0},
            {"tol": -0.1},
        ],
    )
    def test_invalid_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            V2VConfig(**kwargs)

    def test_valid_defaults(self):
        cfg = V2VConfig()
        assert cfg.walk_config().walks_per_vertex == cfg.walks_per_vertex
        assert cfg.train_config().dim == cfg.dim

    def test_with_dim_revalidates(self):
        cfg = V2VConfig(dim=10)
        with pytest.raises(ValueError):
            cfg.with_dim(0)

    def test_node2vec_roundtrip(self):
        cfg = V2VConfig(walk_mode=WalkMode.NODE2VEC, p=0.5, q=2.0)
        wc = cfg.walk_config()
        assert wc.p == 0.5 and wc.q == 2.0
