"""Tests for the fused float32 CBOW negative-sampling kernel."""

import numpy as np
import pytest

from repro.core.cbow import CBOWNegativeSampling
from repro.core.fused import FusedCBOWNegativeSampling
from repro.core.negative import NegativeSampler
from repro.core.trainer import TrainConfig, resolve_kernel, train_embeddings
from repro.walks.corpus import WalkCorpus


def _uniform_dist(v):
    return np.full(v, 1.0 / v)


def _batch(rng, vocab, batch=64, width=4):
    centers = rng.integers(0, vocab, batch).astype(np.int64)
    contexts = rng.integers(0, vocab, (batch, width)).astype(np.int64)
    # Punch PAD holes into some rows (but never empty a row).
    holes = rng.random((batch, width)) < 0.3
    holes[:, 0] = False
    contexts[holes] = -1
    return centers, contexts


def _corpus(rng, num_vertices=12, walks=80, length=10):
    rows = rng.integers(0, num_vertices, (walks, length)).astype(np.int64)
    return WalkCorpus(rows, num_vertices=num_vertices)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            FusedCBOWNegativeSampling(0, 5, np.empty(0))
        with pytest.raises(ValueError):
            FusedCBOWNegativeSampling(4, 0, _uniform_dist(4))
        with pytest.raises(ValueError):
            FusedCBOWNegativeSampling(4, 5, _uniform_dist(4), negatives=0)
        with pytest.raises(ValueError):
            FusedCBOWNegativeSampling(4, 5, _uniform_dist(3))

    def test_shapes_and_dtypes(self):
        m = FusedCBOWNegativeSampling(10, 6, _uniform_dist(10))
        assert m.w_in.shape == (10, 6) and m.w_in.dtype == np.float32
        assert m.w_out.shape == (10, 6) and m.w_out.dtype == np.float32

    def test_vectors_property_is_float64(self):
        m = FusedCBOWNegativeSampling(10, 6, _uniform_dist(10))
        v = m.vectors
        assert v.dtype == np.float64
        np.testing.assert_allclose(v, m.w_in, rtol=1e-6)

    def test_init_matches_reference_draws(self):
        """Same rng → same init as the reference kernel, cast to f32."""
        ref = CBOWNegativeSampling(
            10,
            6,
            NegativeSampler(_uniform_dist(10)),
            rng=np.random.default_rng(3),
        )
        fused = FusedCBOWNegativeSampling(
            10, 6, _uniform_dist(10), rng=np.random.default_rng(3)
        )
        np.testing.assert_array_equal(
            fused.w_in, ref.w_in.astype(np.float32)
        )


class TestBatchStep:
    def test_deterministic_at_fixed_seed(self):
        vocab, dim = 30, 8
        runs = []
        for _ in range(2):
            m = FusedCBOWNegativeSampling(
                vocab, dim, _uniform_dist(vocab), rng=np.random.default_rng(0)
            )
            rng = np.random.default_rng(7)
            data_rng = np.random.default_rng(1)
            losses = [
                m.batch_step(*_batch(data_rng, vocab), 0.05, rng)
                for _ in range(5)
            ]
            runs.append((losses, m.w_in.copy(), m.w_out.copy()))
        assert runs[0][0] == runs[1][0]
        np.testing.assert_array_equal(runs[0][1], runs[1][1])
        np.testing.assert_array_equal(runs[0][2], runs[1][2])

    def test_loss_decreases_under_training(self):
        vocab, dim = 10, 8
        m = FusedCBOWNegativeSampling(
            vocab, dim, _uniform_dist(vocab), rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(5)
        # A fixed, structured batch: centers predictable from contexts.
        centers = np.arange(vocab, dtype=np.int64).repeat(6)
        contexts = np.stack(
            [(centers + k) % vocab for k in (1, 2, 3)], axis=1
        )
        first = m.batch_step(centers, contexts, 0.1, rng)
        for _ in range(200):
            last = m.batch_step(centers, contexts, 0.1, rng)
        assert last < first

    def test_empty_context_row_rejected(self):
        m = FusedCBOWNegativeSampling(8, 4, _uniform_dist(8))
        centers = np.zeros(2, dtype=np.int64)
        contexts = np.asarray([[1, 2], [-1, -1]], dtype=np.int64)
        with pytest.raises(ValueError):
            m.batch_step(centers, contexts, 0.1, np.random.default_rng(0))

    def test_loss_tracks_reference_kernel(self):
        """Same data, independent draws: the two kernels should land in
        the same loss ballpark after identical training schedules."""
        vocab, dim = 16, 8
        dist = _uniform_dist(vocab)
        ref = CBOWNegativeSampling(
            vocab, dim, NegativeSampler(dist), rng=np.random.default_rng(0)
        )
        fused = FusedCBOWNegativeSampling(
            vocab, dim, dist, rng=np.random.default_rng(0)
        )
        data_rng = np.random.default_rng(2)
        batches = [_batch(data_rng, vocab, batch=128) for _ in range(40)]
        r1 = np.random.default_rng(1)
        r2 = np.random.default_rng(1)
        ref_loss = [ref.batch_step(c, x, 0.05, r1) for c, x in batches][-1]
        fused_loss = [fused.batch_step(c, x, 0.05, r2) for c, x in batches][-1]
        assert abs(ref_loss - fused_loss) < 0.35 * max(ref_loss, fused_loss)


class TestKernelSelection:
    def test_auto_resolves_by_workers(self):
        assert resolve_kernel(TrainConfig(workers=1)) == "reference"
        assert resolve_kernel(TrainConfig(workers=4)) == "fused"

    def test_auto_never_fused_outside_cbow_negative(self):
        assert (
            resolve_kernel(TrainConfig(workers=4, objective="skipgram"))
            == "reference"
        )
        assert (
            resolve_kernel(TrainConfig(workers=4, output_layer="hierarchical"))
            == "reference"
        )

    def test_explicit_kernel_passes_through(self):
        assert resolve_kernel(TrainConfig(kernel="fused")) == "fused"
        assert (
            resolve_kernel(TrainConfig(workers=4, kernel="reference"))
            == "reference"
        )

    def test_fused_requires_cbow_negative(self):
        with pytest.raises(ValueError):
            TrainConfig(kernel="fused", objective="skipgram")
        with pytest.raises(ValueError):
            TrainConfig(kernel="fused", output_layer="hierarchical")
        with pytest.raises(ValueError):
            TrainConfig(kernel="bogus")


class TestTrainerIntegration:
    def test_serial_fused_run_trains(self, rng):
        corpus = _corpus(rng)
        res = train_embeddings(
            corpus, TrainConfig(dim=7, epochs=3, seed=0, kernel="fused")
        )
        assert res.vectors.shape == (12, 7)
        assert res.vectors.dtype == np.float64
        assert np.all(np.isfinite(res.vectors))
        assert len(res.loss_history) == res.epochs_run

    def test_warm_start_cast_to_kernel_dtype(self, rng):
        corpus = _corpus(rng)
        init = np.random.default_rng(9).random((12, 7))
        res = train_embeddings(
            corpus,
            TrainConfig(dim=7, epochs=1, seed=0, kernel="fused"),
            init_vectors=init,
        )
        assert np.all(np.isfinite(res.vectors))

    def test_default_workers1_output_unchanged_by_kernel_field(self, rng):
        """`kernel="auto"` at workers=1 must be bitwise what "reference"
        gives — the golden-checksum anchor."""
        corpus = _corpus(rng)
        auto = train_embeddings(corpus, TrainConfig(dim=6, epochs=2, seed=4))
        ref = train_embeddings(
            corpus, TrainConfig(dim=6, epochs=2, seed=4, kernel="reference")
        )
        np.testing.assert_array_equal(auto.vectors, ref.vectors)
