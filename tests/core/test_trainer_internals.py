"""Focused tests of trainer internals: LR schedule, shuffling, batching."""

import numpy as np
import pytest

from repro.core.trainer import TrainConfig, train_embeddings
from repro.walks.corpus import WalkCorpus


class RecordingObjective:
    """Stub objective capturing every batch_step call."""

    def __init__(self, vocab_size, dim):
        self.w_in = np.zeros((vocab_size, dim))
        self.calls: list[tuple[np.ndarray, float]] = []

    @property
    def vectors(self):
        return self.w_in

    def batch_step(self, centers, contexts, lr, rng):
        self.calls.append((centers.copy(), lr))
        return 1.0  # constant loss -> early stop after `patience` epochs


@pytest.fixture
def corpus():
    rng = np.random.default_rng(0)
    walks = rng.integers(0, 10, size=(20, 8))
    return WalkCorpus(walks, num_vertices=10)


def patched_train(monkeypatch, corpus, config):
    """Run train_embeddings with the recording stub objective."""
    import repro.core.trainer as trainer_mod

    recorder = {}

    def fake_build(config, vocab, rng, init_vectors=None):
        obj = RecordingObjective(vocab.size, config.dim)
        recorder["objective"] = obj
        return obj

    monkeypatch.setattr(trainer_mod, "_build_objective", fake_build)
    result = train_embeddings(corpus, config)
    return result, recorder["objective"]


class TestLRSchedule:
    def test_linear_decay_endpoints(self, monkeypatch, corpus):
        cfg = TrainConfig(
            dim=4, epochs=3, batch_size=16, lr=0.1, lr_min=0.01,
            seed=0, early_stop=False,
        )
        _res, obj = patched_train(monkeypatch, corpus, cfg)
        lrs = [lr for _, lr in obj.calls]
        assert np.isclose(lrs[0], 0.1)
        assert np.isclose(lrs[-1], 0.01)
        # Monotone non-increasing.
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_single_batch_uses_initial_lr(self, monkeypatch, corpus):
        cfg = TrainConfig(
            dim=4, epochs=1, batch_size=100000, lr=0.07, seed=0,
            early_stop=False,
        )
        _res, obj = patched_train(monkeypatch, corpus, cfg)
        assert len(obj.calls) == 1
        assert np.isclose(obj.calls[0][1], 0.07)


class TestBatching:
    def test_every_example_seen_once_per_epoch(self, monkeypatch, corpus):
        cfg = TrainConfig(
            dim=4, epochs=1, batch_size=7, seed=0, early_stop=False
        )
        _res, obj = patched_train(monkeypatch, corpus, cfg)
        seen = np.concatenate([c for c, _ in obj.calls])
        expected, _ = corpus.context_arrays(cfg.window)
        assert seen.shape[0] == expected.shape[0]
        np.testing.assert_array_equal(np.sort(seen), np.sort(expected))

    def test_no_shuffle_preserves_order(self, monkeypatch, corpus):
        cfg = TrainConfig(
            dim=4, epochs=1, batch_size=1000000, seed=0,
            early_stop=False, shuffle=False,
        )
        _res, obj = patched_train(monkeypatch, corpus, cfg)
        expected, _ = corpus.context_arrays(cfg.window)
        np.testing.assert_array_equal(obj.calls[0][0], expected)

    def test_constant_loss_triggers_early_stop(self, monkeypatch, corpus):
        cfg = TrainConfig(dim=4, epochs=50, seed=0, tol=1e-6, patience=2)
        res, _obj = patched_train(monkeypatch, corpus, cfg)
        assert res.converged
        assert res.epochs_run == 3  # epoch 1 sets best; 2 stalls follow
