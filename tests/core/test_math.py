"""Tests for the shared numerics."""

import numpy as np
import pytest

from repro.core._math import (
    log_sigmoid,
    masked_context_mean,
    scatter_add_rows,
    sigmoid,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.asarray([0.0]))[0] == 0.5

    def test_saturation_no_overflow(self):
        out = sigmoid(np.asarray([-1e6, 1e6]))
        assert 0.0 < out[0] < 1e-4
        assert 1.0 - 1e-4 < out[1] <= 1.0

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)


class TestLogSigmoid:
    def test_matches_log_of_sigmoid(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(log_sigmoid(x), np.log(sigmoid(x)), atol=1e-9)

    def test_no_minus_inf(self):
        assert np.isfinite(log_sigmoid(np.asarray([-1e9]))[0])


class TestScatterAddRows:
    def test_matches_add_at(self, rng):
        target = rng.random((20, 4))
        expect = target.copy()
        idx = rng.integers(0, 20, 100)
        rows = rng.random((100, 4))
        np.add.at(expect, idx, rows)
        scatter_add_rows(target, idx, rows)
        np.testing.assert_allclose(target, expect, atol=1e-12)

    def test_empty_noop(self):
        target = np.ones((3, 2))
        scatter_add_rows(target, np.empty(0, dtype=np.int64), np.empty((0, 2)))
        np.testing.assert_array_equal(target, np.ones((3, 2)))

    def test_all_same_index(self):
        target = np.zeros((2, 3))
        idx = np.zeros(5, dtype=np.int64)
        rows = np.ones((5, 3))
        scatter_add_rows(target, idx, rows)
        np.testing.assert_array_equal(target[0], [5, 5, 5])
        np.testing.assert_array_equal(target[1], [0, 0, 0])


class TestMaskedContextMean:
    def test_mean_over_real_slots(self):
        w_in = np.asarray([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]])
        contexts = np.asarray([[0, 1, -1], [2, -1, -1]])
        h, mask, counts = masked_context_mean(w_in, contexts)
        np.testing.assert_allclose(h[0], [0.5, 0.5])
        np.testing.assert_allclose(h[1], [2.0, 2.0])
        assert counts.tolist() == [2, 1]
        assert mask.tolist() == [[True, True, False], [True, False, False]]

    def test_all_pad_row_rejected(self):
        w_in = np.ones((2, 2))
        with pytest.raises(ValueError):
            masked_context_mean(w_in, np.asarray([[-1, -1]]))
