"""Tests for the shared numerics."""

import numpy as np
import pytest

from repro.core._math import (
    log_sigmoid,
    masked_context_mean,
    scatter_add_rows,
    sigmoid,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.asarray([0.0]))[0] == 0.5

    def test_saturation_no_overflow(self):
        out = sigmoid(np.asarray([-1e6, 1e6]))
        assert 0.0 < out[0] < 1e-4
        assert 1.0 - 1e-4 < out[1] <= 1.0

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)


class TestLogSigmoid:
    def test_matches_log_of_sigmoid(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(log_sigmoid(x), np.log(sigmoid(x)), atol=1e-9)

    def test_no_minus_inf(self):
        assert np.isfinite(log_sigmoid(np.asarray([-1e9]))[0])


class TestScatterAddRows:
    def test_matches_add_at(self, rng):
        target = rng.random((20, 4))
        expect = target.copy()
        idx = rng.integers(0, 20, 100)
        rows = rng.random((100, 4))
        np.add.at(expect, idx, rows)
        scatter_add_rows(target, idx, rows)
        np.testing.assert_allclose(target, expect, atol=1e-12)

    def test_empty_noop(self):
        target = np.ones((3, 2))
        scatter_add_rows(target, np.empty(0, dtype=np.int64), np.empty((0, 2)))
        np.testing.assert_array_equal(target, np.ones((3, 2)))

    def test_all_same_index(self):
        target = np.zeros((2, 3))
        idx = np.zeros(5, dtype=np.int64)
        rows = np.ones((5, 3))
        scatter_add_rows(target, idx, rows)
        np.testing.assert_array_equal(target[0], [5, 5, 5])
        np.testing.assert_array_equal(target[1], [0, 0, 0])

    def test_unique_index_fast_path_is_exact(self, rng):
        # No duplicate indices: the bincount check routes through plain
        # fancy-index addition, which must match ufunc.at bitwise.
        target = rng.random((50, 6))
        expect = target.copy()
        idx = rng.permutation(50)[:30].astype(np.int64)
        rows = rng.random((30, 6))
        np.add.at(expect, idx, rows)
        scatter_add_rows(target, idx, rows)
        np.testing.assert_array_equal(target, expect)

    def test_duplicate_heavy_after_unique_batch(self, rng):
        # Alternating unique / duplicate batches exercise both branches
        # (and the shared buffer cache) back to back.
        target = rng.random((30, 4))
        expect = target.copy()
        for size in (10, 200, 8, 500):
            idx = rng.integers(0, 30, size)
            rows = rng.random((size, 4))
            np.add.at(expect, idx, rows)
            scatter_add_rows(target, idx, rows)
        np.testing.assert_allclose(target, expect, atol=1e-12)

    def test_cache_grows_across_batch_sizes(self, rng):
        # A big batch after a small one must not reuse an undersized
        # ones/arange buffer.
        target = np.zeros((10, 2))
        expect = np.zeros((10, 2))
        small_idx = np.asarray([3, 3, 3], dtype=np.int64)
        scatter_add_rows(target, small_idx, np.ones((3, 2)))
        np.add.at(expect, small_idx, np.ones((3, 2)))
        big_idx = rng.integers(0, 10, 400)
        big_rows = rng.random((400, 2))
        scatter_add_rows(target, big_idx, big_rows)
        np.add.at(expect, big_idx, big_rows)
        np.testing.assert_allclose(target, expect, atol=1e-12)


class TestMaskedContextMean:
    def test_mean_over_real_slots(self):
        w_in = np.asarray([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]])
        contexts = np.asarray([[0, 1, -1], [2, -1, -1]])
        h, mask, counts = masked_context_mean(w_in, contexts)
        np.testing.assert_allclose(h[0], [0.5, 0.5])
        np.testing.assert_allclose(h[1], [2.0, 2.0])
        assert counts.tolist() == [2, 1]
        assert mask.tolist() == [[True, True, False], [True, False, False]]

    def test_all_pad_row_rejected(self):
        w_in = np.ones((2, 2))
        with pytest.raises(ValueError):
            masked_context_mean(w_in, np.asarray([[-1, -1]]))
