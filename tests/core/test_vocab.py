"""Tests for the vertex vocabulary."""

import numpy as np
import pytest

from repro.core.vocab import VertexVocab
from repro.walks.corpus import WalkCorpus


class TestVocab:
    def test_from_corpus(self):
        walks = np.asarray([[0, 1, 0], [2, -1, -1]])
        vocab = VertexVocab.from_corpus(WalkCorpus(walks, num_vertices=4))
        assert vocab.counts.tolist() == [2, 1, 1, 0]
        assert vocab.total_tokens == 4
        assert vocab.size == 4
        assert vocab.observed.tolist() == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            VertexVocab(np.asarray([[1, 2]]))  # 2-D
        with pytest.raises(ValueError):
            VertexVocab(np.asarray([1, -1]))

    def test_frequencies_sum_to_one(self):
        v = VertexVocab(np.asarray([3, 1, 0]))
        f = v.frequencies()
        assert np.isclose(f.sum(), 1.0)
        assert f[2] == 0.0

    def test_frequencies_empty(self):
        v = VertexVocab(np.zeros(3, dtype=np.int64))
        assert np.all(v.frequencies() == 0)


class TestNoiseDistribution:
    def test_power_smoothing(self):
        v = VertexVocab(np.asarray([16, 1]))
        dist = v.noise_distribution(power=0.75)
        # 16^0.75 = 8, so ratio 8:1 not 16:1.
        assert np.isclose(dist[0] / dist[1], 8.0)

    def test_power_zero_uniform_over_support(self):
        v = VertexVocab(np.asarray([5, 1, 0]))
        dist = v.noise_distribution(power=0.0)
        assert np.isclose(dist[0], dist[1])
        assert dist[2] == 0.0

    def test_zero_count_excluded(self):
        v = VertexVocab(np.asarray([2, 0, 2]))
        assert v.noise_distribution()[1] == 0.0

    def test_empty_vocab_rejected(self):
        v = VertexVocab(np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            v.noise_distribution()

    def test_negative_power_rejected(self):
        v = VertexVocab(np.asarray([1]))
        with pytest.raises(ValueError):
            v.noise_distribution(power=-1)


class TestSubsampling:
    def test_disabled_returns_ones(self):
        v = VertexVocab(np.asarray([10, 1]))
        assert np.all(v.keep_probabilities(0.0) == 1.0)

    def test_frequent_tokens_downweighted(self):
        v = VertexVocab(np.asarray([1000, 1]))
        keep = v.keep_probabilities(1e-3)
        assert keep[0] < 1.0
        assert keep[1] == 1.0

    def test_bounded_by_one(self):
        v = VertexVocab(np.asarray([1, 1, 1000]))
        keep = v.keep_probabilities(1e-2)
        assert np.all(keep <= 1.0)
        assert np.all(keep >= 0.0)

    def test_zero_count_keep_one(self):
        v = VertexVocab(np.asarray([10, 0]))
        assert v.keep_probabilities(1e-3)[1] == 1.0
