"""Tests for the negative sampler."""

import numpy as np
import pytest

from repro.core.negative import NegativeSampler


class TestConstruction:
    def test_normalizes(self):
        s = NegativeSampler(np.asarray([2.0, 2.0]))
        assert s.vocab_size == 2
        assert s.support_size == 2

    def test_rejects_bad_distributions(self):
        with pytest.raises(ValueError):
            NegativeSampler(np.asarray([]))
        with pytest.raises(ValueError):
            NegativeSampler(np.asarray([0.5, -0.5]))
        with pytest.raises(ValueError):
            NegativeSampler(np.zeros(3))
        with pytest.raises(ValueError):
            NegativeSampler(np.ones((2, 2)))

    def test_support_counts_nonzero(self):
        s = NegativeSampler(np.asarray([0.5, 0.0, 0.5]))
        assert s.support_size == 2


class TestSampling:
    def test_distribution_matched(self, rng):
        s = NegativeSampler(np.asarray([0.1, 0.3, 0.6]))
        draws = s.sample(120000, rng)
        freq = np.bincount(draws, minlength=3) / 120000
        np.testing.assert_allclose(freq, [0.1, 0.3, 0.6], atol=0.01)

    def test_zero_mass_never_drawn(self, rng):
        s = NegativeSampler(np.asarray([0.5, 0.0, 0.5]))
        draws = s.sample(10000, rng)
        assert not np.any(draws == 1)

    def test_shape_tuple(self, rng):
        s = NegativeSampler(np.ones(4) / 4)
        assert s.sample((3, 5), rng).shape == (3, 5)

    def test_int_shape(self, rng):
        s = NegativeSampler(np.ones(4) / 4)
        assert s.sample(7, rng).shape == (7,)

    def test_avoid_reduces_collisions(self, rng):
        s = NegativeSampler(np.asarray([0.9, 0.1]))
        avoid = np.zeros((2000, 1), dtype=np.int64)
        draws = s.sample((2000, 3), rng, avoid=avoid)
        # With avoid=0 and heavy mass on 0, retries should push most
        # draws to 1 (collisions may survive max_retries occasionally).
        assert (draws == 0).mean() < 0.6

    def test_avoid_single_support_no_hang(self, rng):
        s = NegativeSampler(np.asarray([1.0]))
        draws = s.sample(5, rng, avoid=np.zeros(5, dtype=np.int64))
        assert np.all(draws == 0)  # nothing else to draw; returns anyway

    def test_deterministic_given_rng(self):
        s = NegativeSampler(np.ones(10) / 10)
        a = s.sample(100, np.random.default_rng(3))
        b = s.sample(100, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_all_draws_in_range(self, rng):
        s = NegativeSampler(np.ones(7) / 7)
        draws = s.sample(10000, rng)
        assert draws.min() >= 0 and draws.max() < 7
