"""Tests for principled parameter selection (paper §VII open question)."""

import numpy as np
import pytest

from repro.core.model import V2VConfig
from repro.core.selection import (
    neighborhood_overlap,
    select_dimension,
    select_walk_budget,
)
from repro.graph.generators import planted_partition
from repro.walks.engine import RandomWalkConfig, generate_walks


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=90, groups=3, alpha=0.6, inter_edges=12, seed=0)


FAST = V2VConfig(walks_per_vertex=5, walk_length=20, epochs=4, seed=0)


class TestNeighborhoodOverlap:
    def test_identical_embeddings_overlap_one(self, rng):
        x = rng.random((40, 8))
        assert neighborhood_overlap(x, x, k=5) == 1.0

    def test_random_embeddings_low(self, rng):
        a = rng.normal(size=(100, 8))
        b = rng.normal(size=(100, 8))
        assert neighborhood_overlap(a, b, k=5) < 0.3

    def test_rotation_invariant(self, rng):
        """Cosine k-NN sets are preserved by orthogonal maps."""
        x = rng.normal(size=(50, 6))
        q, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        assert neighborhood_overlap(x, x @ q, k=5) == 1.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            neighborhood_overlap(rng.random((5, 2)), rng.random((6, 2)))
        with pytest.raises(ValueError):
            neighborhood_overlap(rng.random((5, 2)), rng.random((5, 2)), k=5)


class TestSelectDimension:
    def test_silhouette_selection(self, graph):
        best, scores = select_dimension(
            graph, dims=(4, 16), k=3, config=FAST, seed=0
        )
        assert best in (4, 16)
        assert len(scores) == 2
        assert all(s.train_seconds > 0 for s in scores)
        # Best really is the argmax of the recorded scores.
        top = max(scores, key=lambda s: (s.score, -s.dim))
        assert top.dim == best

    def test_accepts_prebuilt_corpus(self, graph):
        corpus = generate_walks(
            graph, RandomWalkConfig(walks_per_vertex=5, walk_length=20, seed=0)
        )
        best, scores = select_dimension(
            corpus, dims=(8,), k=3, config=FAST, seed=0
        )
        assert best == 8

    def test_stability_criterion(self, graph):
        best, scores = select_dimension(
            graph, dims=(16,), criterion="stability", config=FAST, seed=0
        )
        assert best == 16
        # Real structure at this alpha: runs should agree substantially.
        assert scores[0].score > 0.2

    def test_time_penalty_prefers_cheap(self, graph):
        corpus = generate_walks(
            graph, RandomWalkConfig(walks_per_vertex=5, walk_length=20, seed=0)
        )
        _best_free, scores_free = select_dimension(
            corpus, dims=(8, 64), k=3, config=FAST, seed=0
        )
        best_penalized, _ = select_dimension(
            corpus, dims=(8, 64), k=3, config=FAST, seed=0, time_penalty=10.0
        )
        # A huge time penalty must select the cheaper dimension.
        cheapest = min(scores_free, key=lambda s: s.train_seconds).dim
        assert best_penalized == cheapest

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            select_dimension(graph, dims=())
        with pytest.raises(ValueError):
            select_dimension(graph, criterion="magic")
        with pytest.raises(ValueError):
            select_dimension(graph, time_penalty=-1.0)


class TestSelectWalkBudget:
    def test_finds_stable_budget(self, graph):
        chosen, steps = select_walk_budget(
            graph,
            walk_length=20,
            start=1,
            max_walks_per_vertex=16,
            stability_threshold=0.3,
            dim=16,
            seed=0,
        )
        assert 1 <= chosen <= 16
        assert np.isnan(steps[0].overlap_with_previous)
        assert steps[-1].walks_per_vertex == chosen or chosen == 16
        # Tokens grow monotonically with the budget.
        tokens = [s.tokens for s in steps]
        assert tokens == sorted(tokens)

    def test_threshold_one_runs_to_cap(self, graph):
        chosen, steps = select_walk_budget(
            graph,
            walk_length=10,
            start=1,
            max_walks_per_vertex=4,
            stability_threshold=1.0,
            dim=8,
            seed=0,
        )
        # Perfect agreement never happens with finite corpora, so the
        # search exhausts the cap.
        assert chosen == 4 or steps[-1].overlap_with_previous >= 1.0

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            select_walk_budget(graph, start=0)
        with pytest.raises(ValueError):
            select_walk_budget(graph, start=8, max_walks_per_vertex=4)
        with pytest.raises(ValueError):
            select_walk_budget(graph, stability_threshold=0.0)
