"""Tests for SkipGram with negative sampling."""

import numpy as np
import pytest

from repro.core._math import sigmoid
from repro.core.negative import NegativeSampler
from repro.core.skipgram import SkipGramNegativeSampling

from tests.core.test_cbow import FixedSampler, uniform_sampler


class TestConstruction:
    def test_shapes(self):
        m = SkipGramNegativeSampling(10, 4, uniform_sampler(10))
        assert m.w_in.shape == (10, 4)
        assert m.w_out.shape == (10, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            SkipGramNegativeSampling(0, 4, uniform_sampler(1))
        with pytest.raises(ValueError):
            SkipGramNegativeSampling(10, 4, uniform_sampler(3))
        with pytest.raises(ValueError):
            SkipGramNegativeSampling(10, 4, uniform_sampler(10), negatives=0)


class TestGradients:
    def _loss(self, w_in, w_out, pairs, negs):
        total = 0.0
        for center, ctx in pairs:
            h = w_in[center]
            total -= np.log(sigmoid(np.asarray([h @ w_out[ctx]])))[0]
            for k in negs:
                total -= np.log(sigmoid(np.asarray([-(h @ w_out[k])])))[0]
        return total

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        v, d = 6, 4
        negs = [4, 5]
        m = SkipGramNegativeSampling(v, d, FixedSampler(v, negs), negatives=2, rng=rng)
        m.w_in = rng.normal(size=(v, d)) * 0.3
        m.w_out = rng.normal(size=(v, d)) * 0.3
        centers = np.asarray([0])
        contexts = np.asarray([[1, 2, -1]])
        pairs = [(0, 1), (0, 2)]
        lr = 1e-6
        w_in0, w_out0 = m.w_in.copy(), m.w_out.copy()
        m.batch_step(centers, contexts, lr, rng)
        analytic_in = (m.w_in - w_in0) / lr
        analytic_out = (m.w_out - w_out0) / lr

        eps = 1e-6
        for mat, grad in ((w_in0, analytic_in), (w_out0, analytic_out)):
            which_in = mat is w_in0
            num = np.zeros_like(mat)
            for i in range(v):
                for j in range(d):
                    vals = []
                    for sign in (+1, -1):
                        wi, wo = w_in0.copy(), w_out0.copy()
                        (wi if which_in else wo)[i, j] += sign * eps
                        vals.append(self._loss(wi, wo, pairs, negs))
                    num[i, j] = (vals[0] - vals[1]) / (2 * eps)
            np.testing.assert_allclose(grad, -num, atol=1e-4)

    def test_loss_decreases(self, rng):
        """Epoch-mean loss must fall under shuffled-minibatch training
        (SkipGram multiplies each example into one pair per context, so
        repeated full-batch steps over-step; minibatches are the real
        trainer's regime)."""
        v, d = 20, 8
        m = SkipGramNegativeSampling(v, d, uniform_sampler(v), rng=rng)
        centers = rng.integers(0, 10, 200)
        contexts = (centers[:, None] + rng.integers(1, 3, (200, 4))) % 10
        epoch_losses = []
        for _epoch in range(8):
            order = rng.permutation(200)
            total = 0.0
            for lo in range(0, 200, 32):
                sel = order[lo : lo + 32]
                total += m.batch_step(centers[sel], contexts[sel], 0.02, rng)
            epoch_losses.append(total)
        assert epoch_losses[-1] < epoch_losses[0]

    def test_all_pad_batch_zero_loss(self, rng):
        m = SkipGramNegativeSampling(5, 3, uniform_sampler(5), rng=rng)
        before = m.w_in.copy()
        loss = m.batch_step(np.asarray([0]), np.asarray([[-1, -1]]), 0.1, rng)
        assert loss == 0.0
        np.testing.assert_array_equal(m.w_in, before)

    def test_embeds_cooccurrence(self, rng):
        """Vertices that co-occur must end up closer than ones that don't."""
        v, d = 8, 6
        m = SkipGramNegativeSampling(v, d, uniform_sampler(v), negatives=3, rng=rng)
        # Group A = {0..3}, Group B = {4..7}; contexts only within group.
        centers, contexts = [], []
        for _ in range(400):
            a = rng.integers(0, 4)
            centers.append(a)
            contexts.append([(a + 1) % 4, (a + 2) % 4])
            b = 4 + rng.integers(0, 4)
            centers.append(b)
            contexts.append([4 + (b - 4 + 1) % 4, 4 + (b - 4 + 2) % 4])
        centers = np.asarray(centers)
        contexts = np.asarray(contexts)
        # Shuffled minibatches, like the real trainer (repeated full-batch
        # steps at fixed lr oscillate — that's SGD, not a gradient bug).
        for _epoch in range(6):
            order = rng.permutation(centers.shape[0])
            for lo in range(0, centers.shape[0], 64):
                sel = order[lo : lo + 64]
                m.batch_step(centers[sel], contexts[sel], 0.025, rng)
        x = m.w_in / np.linalg.norm(m.w_in, axis=1, keepdims=True)
        sims = x @ x.T
        intra = (sims[:4, :4].sum() - 4) / 12 + (sims[4:, 4:].sum() - 4) / 12
        inter = sims[:4, 4:].mean()
        assert intra / 2 > inter
