"""Tests for warm-started / incremental training."""

import numpy as np
import pytest

from repro import V2V, V2VConfig
from repro.core.trainer import TrainConfig, train_embeddings
from repro.graph.generators import planted_partition
from repro.graph.perturb import drop_edges
from repro.walks.engine import RandomWalkConfig, generate_walks


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=90, groups=3, alpha=0.6, inter_edges=12, seed=0)


@pytest.fixture(scope="module")
def corpus(graph):
    return generate_walks(
        graph, RandomWalkConfig(walks_per_vertex=6, walk_length=20, seed=0)
    )


class TestInitVectors:
    def test_shape_validated(self, corpus):
        with pytest.raises(ValueError):
            train_embeddings(
                corpus,
                TrainConfig(dim=8, epochs=1, seed=0),
                init_vectors=np.zeros((90, 9)),
            )
        with pytest.raises(ValueError):
            train_embeddings(
                corpus,
                TrainConfig(dim=8, epochs=1, seed=0),
                init_vectors=np.zeros((91, 8)),
            )

    def test_init_is_copied_not_aliased(self, corpus):
        init = np.full((90, 8), 0.01)
        before = init.copy()
        train_embeddings(
            corpus, TrainConfig(dim=8, epochs=1, seed=0), init_vectors=init
        )
        np.testing.assert_array_equal(init, before)

    def test_warm_start_lowers_initial_loss(self, corpus):
        cfg = TrainConfig(dim=12, epochs=3, seed=0, early_stop=False)
        cold = train_embeddings(corpus, cfg)
        warm = train_embeddings(corpus, cfg, init_vectors=cold.vectors)
        # Continuing from trained vectors starts at a lower loss than
        # training from random init.
        assert warm.loss_history[0] < cold.loss_history[0]

    def test_hierarchical_softmax_accepts_init(self, corpus):
        cfg = TrainConfig(
            dim=8, epochs=1, seed=0, output_layer="hierarchical"
        )
        res = train_embeddings(
            corpus, cfg, init_vectors=np.full((90, 8), 0.01)
        )
        assert res.vectors.shape == (90, 8)


class TestRefit:
    def test_refit_requires_fitted(self, graph):
        with pytest.raises(RuntimeError):
            V2V().refit(graph)

    def test_refit_requires_same_universe(self, graph):
        cfg = V2VConfig(dim=8, walks_per_vertex=4, walk_length=15, epochs=2, seed=0)
        model = V2V(cfg).fit(graph)
        smaller = planted_partition(n=60, groups=3, alpha=0.6, inter_edges=6, seed=1)
        with pytest.raises(ValueError):
            model.refit(smaller)

    def test_refit_after_perturbation(self, graph):
        cfg = V2VConfig(
            dim=12, walks_per_vertex=6, walk_length=20, epochs=6,
            tol=1e-2, patience=1, seed=0,
        )
        model = V2V(cfg).fit(graph)
        perturbed = drop_edges(graph, 0.1, seed=1)
        cold_epochs = V2V(cfg).fit(perturbed).result.epochs_run
        warm = model.refit(perturbed)
        # Warm start converges at least as fast as cold start.
        assert warm.result.epochs_run <= cold_epochs
        assert warm.vectors.shape == (90, 12)

    def test_refit_preserves_quality(self, graph):
        from repro.ml import KMeans, pairwise_precision_recall

        cfg = V2VConfig(
            dim=12, walks_per_vertex=6, walk_length=20, epochs=5, seed=0
        )
        model = V2V(cfg).fit(graph)
        perturbed = drop_edges(graph, 0.15, seed=2)
        model.refit(perturbed)
        labels = KMeans(3, n_init=10, seed=0).fit_predict(model.vectors)
        truth = graph.vertex_labels("community")
        p, r = pairwise_precision_recall(truth, labels)
        assert p > 0.8 and r > 0.8
