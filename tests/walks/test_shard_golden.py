"""Golden determinism for the sharded walk engine.

The committed checksum pins the exact bytes of the walk corpus the
shard-parallel engine produces at a fixed seed on the same
planted-partition graph the pipeline golden test uses. Because the
engine draws counter-based per-(walk, step) hashes, the digest must be
identical for EVERY shard count and worker count — the parametrized
cases prove the invariance, the constant pins the stream itself against
drift (a changed mixer, key derivation, or exchange rule all fail
here, even if they remain self-consistent).

To regenerate after an *intentional* change to the sharded draw stream::

    REPRO_GOLDEN_PRINT=1 PYTHONPATH=src python -m pytest \
        tests/walks/test_shard_golden.py -s

and paste the printed digest into ``SHARD_GOLDEN_SHA256``.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.graph.generators import planted_partition
from repro.graph.store import GraphStore
from repro.pipeline.context import ExecutionContext
from repro.walks.engine import RandomWalkConfig
from repro.walks.sharded import generate_walks_sharded

SHARD_GOLDEN_SHA256 = (
    "6cdc340b7a2889f9e005c2aeeca8bcba003a99d43282c2421622e75736d0c926"
)


def _corpus_digest(tmp_path, shards: int, workers: int) -> str:
    graph = planted_partition(n=120, groups=4, alpha=0.7, inter_edges=60, seed=11)
    store = GraphStore.build(
        graph, tmp_path / f"store-{shards}-{workers}", shards=shards, seed=3
    )
    config = RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=42)
    corpus = generate_walks_sharded(
        store, config, context=ExecutionContext(workers=workers)
    )
    walks = np.ascontiguousarray(corpus.walks, dtype=np.int64)
    return hashlib.sha256(walks.tobytes()).hexdigest()


@pytest.mark.parametrize(
    "shards,workers", [(1, 1), (2, 1), (4, 1), (4, 2)]
)
def test_sharded_corpus_matches_golden_checksum(tmp_path, shards, workers):
    digest = _corpus_digest(tmp_path, shards, workers)
    if os.environ.get("REPRO_GOLDEN_PRINT"):
        print(f"\nshard golden digest ({shards} shards, {workers} workers): {digest}")
    assert digest == SHARD_GOLDEN_SHA256, (
        "sharded walk corpus drifted from the committed golden checksum; "
        "if the change to the draw stream is intentional, regenerate with "
        "REPRO_GOLDEN_PRINT=1 (see module docstring)"
    )
