"""Tests for node2vec second-order biased walks."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import complete_graph, planted_partition
from repro.walks.engine import RandomWalkConfig, WalkMode, generate_walks


def backtrack_rate(g, p, q, seed=0, walks=30, length=12):
    cfg = RandomWalkConfig(
        walks_per_vertex=walks, walk_length=length, seed=seed,
        mode=WalkMode.NODE2VEC, p=p, q=q,
    )
    corpus = generate_walks(g, cfg)
    w = corpus.walks
    valid = w[:, 2:] >= 0
    bt = (w[:, 2:] == w[:, :-2]) & valid
    return bt.sum() / max(valid.sum(), 1)


class TestConfig:
    def test_pq_validation(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(p=0.0, mode=WalkMode.NODE2VEC)
        with pytest.raises(ValueError):
            RandomWalkConfig(q=-1.0, mode=WalkMode.NODE2VEC)
        with pytest.raises(ValueError):
            RandomWalkConfig(p=2.0)  # p/q require node2vec mode

    def test_defaults_allow_other_modes(self):
        RandomWalkConfig(mode=WalkMode.UNIFORM)  # p=q=1 fine


class TestWalkValidity:
    def test_walks_follow_edges(self):
        g = planted_partition(n=60, groups=3, alpha=0.5, inter_edges=10, seed=0)
        cfg = RandomWalkConfig(
            walks_per_vertex=3, walk_length=10, seed=0,
            mode=WalkMode.NODE2VEC, p=0.5, q=2.0,
        )
        corpus = generate_walks(g, cfg)
        arcs = set(g.arcs())
        for walk in corpus.sentences():
            for u, v in zip(walk[:-1], walk[1:]):
                assert (int(u), int(v)) in arcs

    def test_dead_ends_terminate(self):
        g = Graph(3, [(0, 1), (1, 2)], directed=True)
        cfg = RandomWalkConfig(
            walks_per_vertex=2, walk_length=6, seed=0,
            mode=WalkMode.NODE2VEC, p=0.5, q=0.5,
        )
        corpus = generate_walks(g, cfg)
        from_zero = corpus.walks[corpus.walks[:, 0] == 0]
        for w in from_zero:
            assert w[:3].tolist() == [0, 1, 2]
            assert np.all(w[3:] == -1)

    def test_reproducible(self):
        g = complete_graph(12)
        cfg = RandomWalkConfig(
            walks_per_vertex=2, walk_length=8, seed=5,
            mode=WalkMode.NODE2VEC, p=0.25, q=4.0,
        )
        a = generate_walks(g, cfg)
        b = generate_walks(g, cfg)
        np.testing.assert_array_equal(a.walks, b.walks)


class TestBias:
    def test_low_p_increases_backtracking(self):
        g = planted_partition(n=60, groups=3, alpha=0.5, inter_edges=10, seed=0)
        assert backtrack_rate(g, p=0.05, q=1.0) > backtrack_rate(g, p=20.0, q=1.0) + 0.2

    def test_p1_q1_matches_uniform_statistics(self):
        """p = q = 1 must reduce to the first-order walk distribution."""
        g = complete_graph(10)
        n2v = backtrack_rate(g, p=1.0, q=1.0, walks=200)
        # Uniform walk on K10: P(backtrack) = 1/9.
        assert abs(n2v - 1 / 9) < 0.02

    def test_high_q_stays_local(self):
        """Large q discourages leaving the previous vertex's neighborhood:
        on a community graph, fewer cross-community transitions."""
        g = planted_partition(n=80, groups=4, alpha=0.8, inter_edges=40, seed=0)
        truth = g.vertex_labels("community")

        def cross_rate(q):
            cfg = RandomWalkConfig(
                walks_per_vertex=20, walk_length=15, seed=0,
                mode=WalkMode.NODE2VEC, p=1.0, q=q,
            )
            corpus = generate_walks(g, cfg)
            w = corpus.walks
            a, b = w[:, :-1], w[:, 1:]
            mask = (a >= 0) & (b >= 0)
            return (truth[a[mask]] != truth[b[mask]]).mean()

        assert cross_rate(8.0) < cross_rate(0.125)

    def test_triangle_step_weight(self):
        """On a path A-B-C where C has neighbors {B, D}: from B (prev A),
        stepping to C then from C the options are B (return, 1/p) and D
        (explore, 1/q, D not adjacent to B)."""
        # Star-free line: 0-1-2-3. From 1 with prev 0: neighbors {0, 2}.
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        # p tiny -> from vertex 1 (prev 0) returns to 0 almost always.
        cfg = RandomWalkConfig(
            walks_per_vertex=300, walk_length=3, seed=0,
            mode=WalkMode.NODE2VEC, p=0.01, q=1.0,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        # Walk 0 -> 1 -> x: x should be 0 (return) ~99% of the time.
        third = corpus.walks[:, 2]
        assert (third == 0).mean() > 0.9
