"""Tests for walk-corpus diagnostics."""

import numpy as np
import pytest

from repro.graph.generators import planted_partition, star_graph
from repro.walks.corpus import WalkCorpus
from repro.walks.engine import RandomWalkConfig, generate_walks
from repro.walks.stats import corpus_stats, crossing_rate


def corpus_of(rows, num_vertices=10):
    return WalkCorpus(np.asarray(rows, dtype=np.int64), num_vertices=num_vertices)


class TestCorpusStats:
    def test_basic_counts(self):
        c = corpus_of([[0, 1, 2], [3, -1, -1]])
        s = corpus_stats(c)
        assert s.num_walks == 2
        assert s.num_tokens == 4
        assert s.mean_walk_length == 2.0
        assert s.coverage == 0.4

    def test_uniform_visits_max_entropy(self):
        c = corpus_of([[0, 1, 2, 3]], num_vertices=4)
        s = corpus_stats(c)
        assert np.isclose(s.entropy_ratio, 1.0)

    def test_skewed_visits_lower_entropy(self):
        skewed = corpus_of([[0, 0, 0, 0, 0, 0, 0, 1]], num_vertices=2)
        even = corpus_of([[0, 1, 0, 1, 0, 1, 0, 1]], num_vertices=2)
        assert corpus_stats(skewed).entropy_ratio < corpus_stats(even).entropy_ratio

    def test_empty_corpus(self):
        c = WalkCorpus(np.empty((0, 3), dtype=np.int64), num_vertices=4)
        s = corpus_stats(c)
        assert s.num_tokens == 0
        assert s.visit_entropy == 0.0
        assert s.entropy_ratio == 1.0

    def test_star_graph_hub_dominates(self):
        g = star_graph(20)
        corpus = generate_walks(
            g, RandomWalkConfig(walks_per_vertex=3, walk_length=10, seed=0)
        )
        s = corpus_stats(corpus)
        # Every other step visits the hub -> entropy well below uniform.
        assert s.entropy_ratio < 0.95


class TestCrossingRate:
    def test_pure_walks_zero(self):
        c = corpus_of([[0, 1, 0, 1], [2, 3, 2, 3]], num_vertices=4)
        labels = np.asarray([0, 0, 1, 1])
        assert crossing_rate(c, labels) == 0.0

    def test_alternating_walk_one(self):
        c = corpus_of([[0, 2, 0, 2]], num_vertices=4)
        labels = np.asarray([0, 0, 1, 1])
        assert crossing_rate(c, labels) == 1.0

    def test_pads_ignored(self):
        c = corpus_of([[0, 2, -1, -1]], num_vertices=4)
        labels = np.asarray([0, 0, 1, 1])
        assert crossing_rate(c, labels) == 1.0

    def test_no_transitions_nan(self):
        c = corpus_of([[0], [1]], num_vertices=2)
        labels = np.asarray([0, 1])
        assert np.isnan(crossing_rate(c, labels))

    def test_label_shape_validated(self):
        c = corpus_of([[0, 1]], num_vertices=4)
        with pytest.raises(ValueError):
            crossing_rate(c, np.asarray([0, 1]))

    def test_crossing_drops_with_alpha(self):
        """Stronger communities -> purer walks (the mechanism behind
        Figs 5-7)."""
        rates = {}
        for alpha in (0.1, 0.9):
            g = planted_partition(
                n=100, groups=4, alpha=alpha, inter_edges=30, seed=0
            )
            corpus = generate_walks(
                g, RandomWalkConfig(walks_per_vertex=4, walk_length=20, seed=0)
            )
            rates[alpha] = crossing_rate(corpus, g.vertex_labels("community"))
        assert rates[0.9] < rates[0.1]
