"""Tests for the alias-method sampler."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.walks.alias import AliasTable, build_alias, build_arc_alias


class TestBuildAlias:
    def test_uniform_weights(self):
        prob, alias = build_alias(np.ones(4))
        assert np.allclose(prob, 1.0)
        assert prob.shape == (4,)

    def test_empty(self):
        prob, alias = build_alias(np.empty(0))
        assert prob.shape == (0,)

    def test_single_element(self):
        prob, alias = build_alias(np.asarray([3.0]))
        assert prob.tolist() == [1.0]
        assert alias.tolist() == [0]

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            build_alias(np.asarray([1.0, -1.0]))
        with pytest.raises(ValueError):
            build_alias(np.zeros(3))

    def test_distribution_preserved(self):
        """Alias sampling must reproduce the target distribution exactly
        in expectation: check via the analytic slot probabilities."""
        w = np.asarray([1.0, 2.0, 3.0, 4.0])
        prob, alias = build_alias(w)
        k = w.shape[0]
        # P(i) = (prob[i] + sum_{j: alias[j]==i} (1-prob[j])) / k
        p = prob.copy()
        for j in range(k):
            p[alias[j]] += 1.0 - prob[j]
        np.testing.assert_allclose(p / k, w / w.sum(), atol=1e-12)

    def test_extreme_skew(self):
        w = np.asarray([1e-8, 1.0, 1e-8])
        prob, alias = build_alias(w)
        p = prob.copy()
        for j in range(3):
            p[alias[j]] += 1.0 - prob[j]
        np.testing.assert_allclose(p / 3, w / w.sum(), atol=1e-12)


class TestArcAlias:
    def test_flat_tables_align_with_rows(self, weighted_star):
        table = build_arc_alias(weighted_star.indptr, weighted_star.edge_weights)
        assert table.prob.shape == (weighted_star.num_arcs,)
        assert table.alias.shape == (weighted_star.num_arcs,)

    def test_sampling_respects_weights(self, rng):
        # Vertex 0 has neighbors 1,2,3 with weights 1,2,3.
        g = Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)], directed=True)
        table = build_arc_alias(g.indptr, g.edge_weights)
        starts = np.zeros(60000, dtype=np.int64)
        degrees = np.full(60000, 3, dtype=np.int64)
        arcs = table.sample(starts, degrees, rng)
        picks = g.indices[arcs]
        freq = np.bincount(picks, minlength=4)[1:] / 60000
        np.testing.assert_allclose(freq, [1 / 6, 2 / 6, 3 / 6], atol=0.02)

    def test_zero_weight_row_degenerates_uniform(self, rng):
        g = Graph(3, [(0, 1, 0.0), (0, 2, 0.0)], directed=True)
        table = build_arc_alias(g.indptr, g.edge_weights)
        starts = np.zeros(10000, dtype=np.int64)
        degrees = np.full(10000, 2, dtype=np.int64)
        picks = g.indices[table.sample(starts, degrees, rng)]
        freq = np.bincount(picks, minlength=3)[1:] / 10000
        np.testing.assert_allclose(freq, [0.5, 0.5], atol=0.03)

    def test_misaligned_weights_rejected(self, weighted_star):
        with pytest.raises(ValueError):
            build_arc_alias(weighted_star.indptr, np.ones(2))

    def test_negative_weights_rejected(self, weighted_star):
        with pytest.raises(ValueError):
            build_arc_alias(
                weighted_star.indptr, -np.ones(weighted_star.num_arcs)
            )

    def test_empty_rows_ok(self):
        g = Graph(3, [(0, 1, 1.0)], directed=True)  # vertices 1,2 have no arcs
        table = build_arc_alias(g.indptr, g.edge_weights)
        assert table.prob.shape == (1,)
