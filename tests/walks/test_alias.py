"""Tests for the alias-method sampler."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.walks.alias import AliasTable, build_alias, build_arc_alias


class TestBuildAlias:
    def test_uniform_weights(self):
        prob, alias = build_alias(np.ones(4))
        assert np.allclose(prob, 1.0)
        assert prob.shape == (4,)

    def test_empty(self):
        prob, alias = build_alias(np.empty(0))
        assert prob.shape == (0,)

    def test_single_element(self):
        prob, alias = build_alias(np.asarray([3.0]))
        assert prob.tolist() == [1.0]
        assert alias.tolist() == [0]

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            build_alias(np.asarray([1.0, -1.0]))
        with pytest.raises(ValueError):
            build_alias(np.zeros(3))

    def test_distribution_preserved(self):
        """Alias sampling must reproduce the target distribution exactly
        in expectation: check via the analytic slot probabilities."""
        w = np.asarray([1.0, 2.0, 3.0, 4.0])
        prob, alias = build_alias(w)
        k = w.shape[0]
        # P(i) = (prob[i] + sum_{j: alias[j]==i} (1-prob[j])) / k
        p = prob.copy()
        for j in range(k):
            p[alias[j]] += 1.0 - prob[j]
        np.testing.assert_allclose(p / k, w / w.sum(), atol=1e-12)

    def test_extreme_skew(self):
        w = np.asarray([1e-8, 1.0, 1e-8])
        prob, alias = build_alias(w)
        p = prob.copy()
        for j in range(3):
            p[alias[j]] += 1.0 - prob[j]
        np.testing.assert_allclose(p / 3, w / w.sum(), atol=1e-12)


class TestArcAlias:
    def test_flat_tables_align_with_rows(self, weighted_star):
        table = build_arc_alias(weighted_star.indptr, weighted_star.edge_weights)
        assert table.prob.shape == (weighted_star.num_arcs,)
        assert table.alias.shape == (weighted_star.num_arcs,)

    def test_sampling_respects_weights(self, rng):
        # Vertex 0 has neighbors 1,2,3 with weights 1,2,3.
        g = Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)], directed=True)
        table = build_arc_alias(g.indptr, g.edge_weights)
        starts = np.zeros(60000, dtype=np.int64)
        degrees = np.full(60000, 3, dtype=np.int64)
        arcs = table.sample(starts, degrees, rng)
        picks = g.indices[arcs]
        freq = np.bincount(picks, minlength=4)[1:] / 60000
        np.testing.assert_allclose(freq, [1 / 6, 2 / 6, 3 / 6], atol=0.02)

    def test_zero_weight_row_degenerates_uniform(self, rng):
        g = Graph(3, [(0, 1, 0.0), (0, 2, 0.0)], directed=True)
        table = build_arc_alias(g.indptr, g.edge_weights)
        starts = np.zeros(10000, dtype=np.int64)
        degrees = np.full(10000, 2, dtype=np.int64)
        picks = g.indices[table.sample(starts, degrees, rng)]
        freq = np.bincount(picks, minlength=3)[1:] / 10000
        np.testing.assert_allclose(freq, [0.5, 0.5], atol=0.03)

    def test_misaligned_weights_rejected(self, weighted_star):
        with pytest.raises(ValueError):
            build_arc_alias(weighted_star.indptr, np.ones(2))

    def test_negative_weights_rejected(self, weighted_star):
        with pytest.raises(ValueError):
            build_arc_alias(
                weighted_star.indptr, -np.ones(weighted_star.num_arcs)
            )

    def test_empty_rows_ok(self):
        g = Graph(3, [(0, 1, 1.0)], directed=True)  # vertices 1,2 have no arcs
        table = build_arc_alias(g.indptr, g.edge_weights)
        assert table.prob.shape == (1,)


class TestBatchedSample:
    """PR7: array-shaped draws must be a pure reshape of the scalar
    contract — same per-draw math, same distribution, and bitwise
    equality with the historic 1-D call at a fixed seed."""

    def test_1d_call_bitwise_unchanged(self, weighted_star):
        table = build_arc_alias(weighted_star.indptr, weighted_star.edge_weights)
        starts = np.zeros(500, dtype=np.int64)
        degrees = np.full(500, weighted_star.out_degrees()[0], dtype=np.int64)
        a = table.sample(starts, degrees, np.random.default_rng(42))
        # Reference re-implementation of the pre-PR7 1-D body.
        rng = np.random.default_rng(42)
        u = rng.random(500)
        slots = (u * degrees).astype(np.int64)
        np.minimum(slots, degrees - 1, out=slots)
        arc = starts + slots
        accept = rng.random(500) < table.prob[arc]
        b = np.where(accept, arc, starts + table.alias[arc])
        np.testing.assert_array_equal(a, b)

    def test_shaped_draw_matches_flat_draw(self):
        g = Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)], directed=True)
        table = build_arc_alias(g.indptr, g.edge_weights)
        shaped = table.sample(0, 3, np.random.default_rng(9), shape=(32, 5))
        flat = table.sample(
            np.zeros(160, dtype=np.int64),
            np.full(160, 3, dtype=np.int64),
            np.random.default_rng(9),
        )
        assert shaped.shape == (32, 5)
        np.testing.assert_array_equal(shaped.ravel(), flat)

    def test_batched_distribution_matches_scalar(self, rng):
        g = Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)], directed=True)
        table = build_arc_alias(g.indptr, g.edge_weights)
        picks = g.indices[table.sample(0, 3, rng, shape=(300, 200))]
        freq = np.bincount(picks.ravel(), minlength=4)[1:] / 60000
        np.testing.assert_allclose(freq, [1 / 6, 2 / 6, 3 / 6], atol=0.02)

    def test_scalar_broadcast_against_array(self):
        g = Graph(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)], directed=True)
        table = build_arc_alias(g.indptr, g.edge_weights)
        out = table.sample(
            0, np.full((2, 7), 3, dtype=np.int64), np.random.default_rng(1)
        )
        assert out.shape == (2, 7)
        assert np.all((out >= 0) & (out < 3))
