"""Tests for the walk corpus and context extraction."""

import numpy as np
import pytest

from repro.walks.corpus import PAD, WalkCorpus


def corpus_of(rows, num_vertices=10):
    return WalkCorpus(np.asarray(rows, dtype=np.int64), num_vertices=num_vertices)


class TestConstruction:
    def test_basic(self):
        c = corpus_of([[0, 1, 2], [3, 4, PAD]])
        assert c.num_walks == 2
        assert c.max_length == 3
        assert c.lengths.tolist() == [3, 2]
        assert c.num_tokens == 5

    def test_rejects_non_suffix_padding(self):
        with pytest.raises(ValueError):
            corpus_of([[0, PAD, 2]])

    def test_rejects_token_out_of_universe(self):
        with pytest.raises(ValueError):
            corpus_of([[0, 11]], num_vertices=10)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            WalkCorpus(np.asarray([0, 1, 2]), num_vertices=5)

    def test_empty(self):
        c = WalkCorpus(np.empty((0, 5), dtype=np.int64), num_vertices=3)
        assert c.num_walks == 0
        assert c.num_tokens == 0


class TestSentences:
    def test_pads_stripped(self):
        c = corpus_of([[0, 1, PAD], [2, PAD, PAD]])
        sents = list(c.sentences())
        assert sents[0].tolist() == [0, 1]
        assert sents[1].tolist() == [2]


class TestTokenCounts:
    def test_counts(self):
        c = corpus_of([[0, 1, 0], [1, PAD, PAD]], num_vertices=3)
        assert c.token_counts().tolist() == [2, 2, 0]

    def test_coverage(self):
        c = corpus_of([[0, 1, 0]], num_vertices=4)
        assert c.coverage() == 0.5


class TestContextArrays:
    def test_window_one_interior(self):
        c = corpus_of([[0, 1, 2]])
        centers, contexts = c.context_arrays(window=1)
        # Examples: center 0 ctx [1]; center 1 ctx [0, 2]; center 2 ctx [1].
        assert centers.tolist() == [0, 1, 2]
        by_center = {int(c_): ctx for c_, ctx in zip(centers, contexts)}
        assert sorted(x for x in by_center[1].tolist() if x != PAD) == [0, 2]
        assert sorted(x for x in by_center[0].tolist() if x != PAD) == [1]

    def test_window_two_padding(self):
        c = corpus_of([[0, 1, 2, 3]])
        centers, contexts = c.context_arrays(window=2)
        assert contexts.shape == (4, 4)
        row0 = contexts[centers.tolist().index(0)]
        assert sorted(x for x in row0.tolist() if x != PAD) == [1, 2]

    def test_pads_never_in_context(self):
        c = corpus_of([[0, 1, PAD, PAD]])
        _centers, contexts = c.context_arrays(window=3)
        real = contexts[contexts != PAD]
        assert set(real.tolist()) <= {0, 1}

    def test_single_token_walks_dropped(self):
        c = corpus_of([[5, PAD, PAD]])
        centers, contexts = c.context_arrays(window=2)
        assert centers.shape == (0,)

    def test_example_count_formula(self):
        # Walk of length L with window w: every position has >=1 context
        # when L >= 2, so num examples == L per walk.
        c = corpus_of([[0, 1, 2, 3, 4], [5, 6, 7, PAD, PAD]])
        centers, _ = c.context_arrays(window=2)
        assert centers.shape[0] == 5 + 3

    def test_invalid_window(self):
        c = corpus_of([[0, 1]])
        with pytest.raises(ValueError):
            c.context_arrays(window=0)

    def test_empty_corpus(self):
        c = WalkCorpus(np.empty((0, 3), dtype=np.int64), num_vertices=2)
        centers, contexts = c.context_arrays(window=2)
        assert centers.shape == (0,)
        assert contexts.shape == (0, 4)

    def test_contexts_stay_within_own_walk(self):
        c = corpus_of([[0, 1], [2, 3]])
        centers, contexts = c.context_arrays(window=3)
        for center, ctx in zip(centers, contexts):
            real = [x for x in ctx.tolist() if x != PAD]
            if int(center) in (0, 1):
                assert set(real) <= {0, 1}
            else:
                assert set(real) <= {2, 3}


class TestMerge:
    def test_merge_pads_to_width(self):
        a = corpus_of([[0, 1]])
        b = corpus_of([[2, 3, 4]])
        merged = a.merge(b)
        assert merged.num_walks == 2
        assert merged.max_length == 3
        assert merged.lengths.tolist() == [2, 3]

    def test_merge_universe_mismatch(self):
        a = corpus_of([[0]], num_vertices=5)
        b = corpus_of([[0]], num_vertices=6)
        with pytest.raises(ValueError):
            a.merge(b)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        c = corpus_of([[0, 1, 2], [3, PAD, PAD]])
        p = tmp_path / "c.npz"
        c.save(p)
        loaded = WalkCorpus.load(p)
        np.testing.assert_array_equal(loaded.walks, c.walks)
        assert loaded.num_vertices == c.num_vertices

    def test_text_roundtrip(self, tmp_path):
        c = corpus_of([[0, 1, 2], [3, PAD, PAD]])
        p = tmp_path / "walks.txt"
        c.to_text(p)
        assert p.read_text() == "0 1 2\n3\n"
        loaded = WalkCorpus.from_text(p, num_vertices=10)
        np.testing.assert_array_equal(loaded.walks, c.walks)
        assert loaded.num_vertices == 10

    def test_text_infers_universe(self, tmp_path):
        p = tmp_path / "walks.txt"
        p.write_text("0 5\n2 1 4\n")
        loaded = WalkCorpus.from_text(p)
        assert loaded.num_vertices == 6
        assert loaded.lengths.tolist() == [2, 3]

    def test_text_empty_file(self, tmp_path):
        p = tmp_path / "walks.txt"
        p.write_text("")
        loaded = WalkCorpus.from_text(p)
        assert loaded.num_walks == 0

    def test_text_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "walks.txt"
        p.write_text("0 1\n\n2 3\n")
        assert WalkCorpus.from_text(p).num_walks == 2
