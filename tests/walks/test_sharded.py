"""Shard-parallel walk engine: determinism across layouts, mode support.

The engine's core promise: the merged corpus is **bitwise-identical**
for every shard count, worker count, and partitioning method at a fixed
seed — shard layout is runtime policy, never model identity. Everything
here pivots on that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import community_benchmark
from repro.graph.core import EdgeList, Graph
from repro.graph.store import GraphStore
from repro.pipeline.context import ExecutionContext
from repro.walks.engine import PAD, RandomWalkConfig, WalkMode, generate_walks
from repro.walks.sharded import generate_walks_sharded, hash_uniform


@pytest.fixture(scope="module")
def rich():
    """Connected graph with weights, times, and vertex weights."""
    rng = np.random.default_rng(0)
    base = community_benchmark(0.7, n=120, groups=4, inter_edges=60, seed=11)
    src, dst = base.arc_array()
    half = src <= dst
    s, d = src[half], dst[half]
    return Graph(
        base.n,
        EdgeList(
            s,
            d,
            weights=rng.uniform(0.1, 5.0, size=s.size),
            times=rng.uniform(0.0, 100.0, size=s.size),
        ),
        vertex_weights=rng.uniform(0.5, 2.0, size=base.n),
    )


@pytest.fixture(scope="module")
def stores(rich, tmp_path_factory):
    root = tmp_path_factory.mktemp("stores")
    return {
        s: GraphStore.build(rich, root / f"s{s}", shards=s, seed=3)
        for s in (1, 2, 4)
    }


MODES = [
    RandomWalkConfig(walk_length=12, walks_per_vertex=2, seed=7),
    RandomWalkConfig(
        mode=WalkMode.WEIGHTED, walk_length=12, walks_per_vertex=2, seed=7
    ),
    RandomWalkConfig(
        mode=WalkMode.VERTEX_WEIGHTED, walk_length=12, walks_per_vertex=2, seed=7
    ),
    RandomWalkConfig(
        mode=WalkMode.TEMPORAL,
        walk_length=12,
        walks_per_vertex=2,
        seed=7,
        time_window=40.0,
    ),
]


class TestShardCountInvariance:
    @pytest.mark.parametrize("config", MODES, ids=lambda c: c.mode.value)
    def test_bitwise_equal_across_shard_counts(self, stores, config):
        ref = generate_walks_sharded(stores[1], config).walks
        for s in (2, 4):
            got = generate_walks_sharded(stores[s], config).walks
            assert np.array_equal(ref, got), f"{config.mode}: {s} shards differ"

    @pytest.mark.parametrize("config", MODES, ids=lambda c: c.mode.value)
    def test_bitwise_equal_across_worker_counts(self, stores, config):
        ref = generate_walks_sharded(stores[4], config).walks
        par = generate_walks_sharded(
            stores[4], config, context=ExecutionContext(workers=3)
        ).walks
        assert np.array_equal(ref, par)

    def test_partition_method_does_not_change_corpus(self, rich, tmp_path):
        config = MODES[0]
        corpora = []
        for method in ("bfs", "label_propagation", "contiguous"):
            store = GraphStore.build(
                rich, tmp_path / method, shards=4, method=method, seed=5
            )
            corpora.append(generate_walks_sharded(store, config).walks)
        assert np.array_equal(corpora[0], corpora[1])
        assert np.array_equal(corpora[0], corpora[2])

    def test_context_shards_cap_is_scheduling_only(self, stores):
        config = MODES[0]
        ref = generate_walks_sharded(stores[4], config).walks
        capped = generate_walks_sharded(
            stores[4], config, context=ExecutionContext(workers=3, shards=1)
        ).walks
        assert np.array_equal(ref, capped)


class TestCorpusValidity:
    def test_walks_follow_edges_in_original_ids(self, rich, stores):
        walks = generate_walks_sharded(stores[4], MODES[0]).walks
        assert walks.shape == (rich.n * 2, 12)
        assert np.array_equal(
            walks[: rich.n, 0], np.arange(rich.n)
        ), "row i must start at original vertex i"
        for row in walks[:: rich.n // 10]:
            for a, b in zip(row[:-1], row[1:]):
                if b == PAD:
                    break
                assert rich.has_edge(int(a), int(b))

    def test_temporal_walks_respect_time_order(self, rich, stores):
        config = MODES[3]
        walks = generate_walks_sharded(stores[4], config).walks
        src, dst = rich.arc_array()
        times = rich.edge_times
        lookup: dict[tuple[int, int], list[float]] = {}
        for i in range(src.size):
            lookup.setdefault((int(src[i]), int(dst[i])), []).append(
                float(times[i])
            )
        for row in walks[:: rich.n // 6]:
            t_prev = -np.inf
            for a, b in zip(row[:-1], row[1:]):
                if b == PAD:
                    break
                options = [t for t in lookup[(int(a), int(b))] if t > t_prev]
                assert options, "walk traversed a time-impossible arc"
                t_prev = min(options)  # weakest consistent assumption

    def test_start_vertices_respected(self, stores):
        config = RandomWalkConfig(
            walk_length=6, walks_per_vertex=3, seed=1, start_vertices=[5, 17, 99]
        )
        walks = generate_walks_sharded(stores[2], config).walks
        assert walks.shape == (9, 6)
        assert np.array_equal(walks[:, 0], np.tile([5, 17, 99], 3))

    def test_walk_length_one_returns_starts(self, stores):
        config = RandomWalkConfig(walk_length=1, walks_per_vertex=1, seed=1)
        walks = generate_walks_sharded(stores[2], config).walks
        assert np.array_equal(walks[:, 0], np.arange(stores[2].n))


class TestValidation:
    def test_node2vec_is_refused(self, stores):
        config = RandomWalkConfig(mode=WalkMode.NODE2VEC, p=2.0, q=0.5, seed=1)
        with pytest.raises(ValueError, match="node2vec"):
            generate_walks_sharded(stores[1], config)

    def test_missing_arrays_are_refused(self, tmp_path):
        plain = community_benchmark(0.7, n=30, groups=2, inter_edges=10, seed=1)
        store = GraphStore.build(plain, tmp_path / "plain", shards=2)
        for mode in (WalkMode.WEIGHTED, WalkMode.VERTEX_WEIGHTED, WalkMode.TEMPORAL):
            with pytest.raises(ValueError):
                generate_walks_sharded(store, RandomWalkConfig(mode=mode, seed=1))

    def test_start_vertex_out_of_range(self, stores):
        config = RandomWalkConfig(seed=1, start_vertices=[400])
        with pytest.raises(ValueError, match="out of range"):
            generate_walks_sharded(stores[1], config)


class TestDispatch:
    def test_generate_walks_routes_stores_to_sharded_engine(self, stores):
        config = MODES[0]
        via_dispatch = generate_walks(stores[4], config).walks
        direct = generate_walks_sharded(stores[4], config).walks
        assert np.array_equal(via_dispatch, direct)


class TestHashUniform:
    def test_deterministic_and_order_free(self):
        w = np.arange(100, dtype=np.int64)
        s = np.full(100, 3, dtype=np.int64)
        a = hash_uniform(12345, w, s)
        b = hash_uniform(12345, w[::-1], s[::-1])[::-1]
        assert np.array_equal(a, b)

    def test_uniform_in_unit_interval(self):
        u = hash_uniform(99, np.arange(10_000), np.zeros(10_000, dtype=np.int64))
        assert u.min() >= 0.0 and u.max() < 1.0
        # Crude uniformity check: decile counts within 20% of expected.
        hist, _ = np.histogram(u, bins=10, range=(0.0, 1.0))
        assert np.all(np.abs(hist - 1000) < 200)

    def test_key_and_lane_decorrelate(self):
        w = np.arange(1000)
        s = np.zeros(1000, dtype=np.int64)
        assert not np.array_equal(hash_uniform(1, w, s), hash_uniform(2, w, s))
        assert not np.array_equal(
            hash_uniform(1, w, s), hash_uniform(1, w, s, lane=1)
        )
