"""Tests for the constrained random-walk engine."""

import numpy as np
import pytest

from repro.graph.core import Graph
from repro.graph.generators import complete_graph, cycle_graph
from repro.walks.engine import PAD, RandomWalkConfig, WalkMode, generate_walks


def _assert_valid_walk_edges(g, corpus):
    """Every consecutive (u, v) in every walk must be an arc of g."""
    arcs = set(g.arcs())
    for walk in corpus.sentences():
        for u, v in zip(walk[:-1], walk[1:]):
            assert (int(u), int(v)) in arcs, (u, v)


class TestConfig:
    def test_defaults(self):
        c = RandomWalkConfig()
        assert c.walks_per_vertex == 10
        assert c.walk_length == 80
        assert c.mode is WalkMode.UNIFORM

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(walks_per_vertex=0)
        with pytest.raises(ValueError):
            RandomWalkConfig(walk_length=0)
        with pytest.raises(ValueError):
            RandomWalkConfig(time_window=-1, mode=WalkMode.TEMPORAL)
        with pytest.raises(ValueError):
            RandomWalkConfig(time_window=1.0)  # window needs temporal mode


class TestUniformWalks:
    def test_shape_and_starts(self, triangle):
        cfg = RandomWalkConfig(walks_per_vertex=4, walk_length=7, seed=0)
        corpus = generate_walks(triangle, cfg)
        assert corpus.walks.shape == (12, 7)
        starts = corpus.walks[:, 0]
        assert np.bincount(starts, minlength=3).tolist() == [4, 4, 4]

    def test_walks_follow_edges(self, two_cliques):
        cfg = RandomWalkConfig(walks_per_vertex=3, walk_length=10, seed=1)
        _assert_valid_walk_edges(two_cliques, generate_walks(two_cliques, cfg))

    def test_full_length_on_connected_graph(self, triangle):
        cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=9, seed=2)
        corpus = generate_walks(triangle, cfg)
        assert np.all(corpus.lengths == 9)

    def test_isolated_vertex_terminates_immediately(self):
        g = Graph(3, [(0, 1)])
        cfg = RandomWalkConfig(walks_per_vertex=1, walk_length=5, seed=0)
        corpus = generate_walks(g, cfg)
        lengths = {int(corpus.walks[i, 0]): int(corpus.lengths[i]) for i in range(3)}
        assert lengths[2] == 1  # vertex 2 has no neighbors

    def test_reproducible(self, two_cliques):
        cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=8, seed=42)
        a = generate_walks(two_cliques, cfg)
        b = generate_walks(two_cliques, cfg)
        np.testing.assert_array_equal(a.walks, b.walks)

    def test_different_seeds_differ(self, two_cliques):
        a = generate_walks(two_cliques, RandomWalkConfig(walk_length=20, seed=1))
        b = generate_walks(two_cliques, RandomWalkConfig(walk_length=20, seed=2))
        assert not np.array_equal(a.walks, b.walks)

    def test_start_vertices_subset(self, two_cliques):
        cfg = RandomWalkConfig(
            walks_per_vertex=5,
            walk_length=4,
            seed=0,
            start_vertices=np.asarray([0, 7]),
        )
        corpus = generate_walks(two_cliques, cfg)
        assert corpus.num_walks == 10
        assert set(corpus.walks[:, 0].tolist()) == {0, 7}

    def test_start_vertices_out_of_range(self, triangle):
        cfg = RandomWalkConfig(start_vertices=np.asarray([5]))
        with pytest.raises(ValueError):
            generate_walks(triangle, cfg)

    def test_walk_length_one(self, triangle):
        corpus = generate_walks(
            triangle, RandomWalkConfig(walks_per_vertex=1, walk_length=1, seed=0)
        )
        assert np.all(corpus.lengths == 1)

    def test_empty_graph(self):
        corpus = generate_walks(Graph(0), RandomWalkConfig(seed=0))
        assert corpus.num_walks == 0

    def test_neighbor_distribution_uniform(self, rng):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        cfg = RandomWalkConfig(
            walks_per_vertex=30000,
            walk_length=2,
            seed=3,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        second = corpus.walks[:, 1]
        freq = np.bincount(second, minlength=4)[1:] / 30000
        np.testing.assert_allclose(freq, 1 / 3, atol=0.02)

    def test_default_config_used_when_none(self, triangle):
        corpus = generate_walks(triangle)
        assert corpus.num_walks == 3 * 10


class TestDirectedWalks:
    def test_follows_direction_and_terminates(self, directed_chain):
        cfg = RandomWalkConfig(walks_per_vertex=2, walk_length=10, seed=0)
        corpus = generate_walks(directed_chain, cfg)
        # A walk from 0 must be exactly 0,1,2,3 then terminate.
        from_zero = corpus.walks[corpus.walks[:, 0] == 0]
        for w in from_zero:
            assert w[:4].tolist() == [0, 1, 2, 3]
            assert np.all(w[4:] == PAD)

    def test_dead_end_start(self, directed_chain):
        cfg = RandomWalkConfig(
            walks_per_vertex=1, walk_length=5, seed=0, start_vertices=np.asarray([3])
        )
        corpus = generate_walks(directed_chain, cfg)
        assert corpus.lengths.tolist() == [1]


class TestWeightedWalks:
    def test_requires_weights(self, triangle):
        with pytest.raises(ValueError):
            generate_walks(triangle, RandomWalkConfig(mode=WalkMode.WEIGHTED))

    def test_weight_proportional_steps(self):
        g = Graph(3, [(0, 1, 9.0), (0, 2, 1.0)], directed=True)
        cfg = RandomWalkConfig(
            walks_per_vertex=20000,
            walk_length=2,
            seed=0,
            mode=WalkMode.WEIGHTED,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        freq = np.bincount(corpus.walks[:, 1], minlength=3) / 20000
        np.testing.assert_allclose(freq[1], 0.9, atol=0.02)

    def test_walks_follow_edges(self):
        g = Graph(5, [(i, (i + 1) % 5, float(i + 1)) for i in range(5)])
        cfg = RandomWalkConfig(walks_per_vertex=3, walk_length=6, seed=1, mode=WalkMode.WEIGHTED)
        _assert_valid_walk_edges(g, generate_walks(g, cfg))


class TestVertexWeightedWalks:
    def test_requires_vertex_weights(self, triangle):
        with pytest.raises(ValueError):
            generate_walks(triangle, RandomWalkConfig(mode=WalkMode.VERTEX_WEIGHTED))

    def test_target_weight_proportional(self):
        g = Graph(
            3,
            [(0, 1), (0, 2)],
            directed=True,
            vertex_weights=[1.0, 3.0, 1.0],
        )
        cfg = RandomWalkConfig(
            walks_per_vertex=20000,
            walk_length=2,
            seed=0,
            mode=WalkMode.VERTEX_WEIGHTED,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        freq = np.bincount(corpus.walks[:, 1], minlength=3) / 20000
        np.testing.assert_allclose(freq[1], 0.75, atol=0.02)


class TestTemporalWalks:
    def test_requires_times(self, triangle):
        with pytest.raises(ValueError):
            generate_walks(triangle, RandomWalkConfig(mode=WalkMode.TEMPORAL))

    def test_strictly_increasing_times(self, temporal_line):
        cfg = RandomWalkConfig(walks_per_vertex=5, walk_length=10, seed=0, mode=WalkMode.TEMPORAL)
        corpus = generate_walks(temporal_line, cfg)
        from_zero = corpus.walks[corpus.walks[:, 0] == 0]
        for w in from_zero:
            assert w[:4].tolist() == [0, 1, 2, 3]

    def test_time_decreasing_edge_blocks(self):
        # 0->1 at t=20, 1->2 at t=10: walk cannot continue past 1.
        g = Graph(3, [(0, 1, 1.0, 20.0), (1, 2, 1.0, 10.0)], directed=True)
        cfg = RandomWalkConfig(
            walks_per_vertex=4, walk_length=5, seed=0, mode=WalkMode.TEMPORAL,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        assert np.all(corpus.lengths == 2)

    def test_equal_times_block(self):
        # Equal timestamps are not strictly increasing.
        g = Graph(3, [(0, 1, 1.0, 10.0), (1, 2, 1.0, 10.0)], directed=True)
        cfg = RandomWalkConfig(
            walks_per_vertex=2, walk_length=5, seed=0, mode=WalkMode.TEMPORAL,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        assert np.all(corpus.lengths == 2)

    def test_window_constraint(self):
        # 0->1 at t=0; from 1: edges at t=5 (inside window 10) and t=50.
        g = Graph(
            4,
            [(0, 1, 1.0, 0.0), (1, 2, 1.0, 5.0), (1, 3, 1.0, 50.0)],
            directed=True,
        )
        cfg = RandomWalkConfig(
            walks_per_vertex=200,
            walk_length=3,
            seed=0,
            mode=WalkMode.TEMPORAL,
            time_window=10.0,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        thirds = corpus.walks[:, 2]
        assert set(thirds.tolist()) == {2}  # vertex 3 violates the window

    def test_first_hop_unconstrained_by_window(self):
        g = Graph(2, [(0, 1, 1.0, 1000.0)], directed=True)
        cfg = RandomWalkConfig(
            walks_per_vertex=1, walk_length=2, seed=0,
            mode=WalkMode.TEMPORAL, time_window=1.0,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        assert corpus.lengths.tolist() == [2]

    def test_temporal_choice_uniform_among_eligible(self):
        g = Graph(
            4,
            [(0, 1, 1.0, 1.0), (0, 2, 1.0, 2.0), (0, 3, 1.0, 3.0)],
            directed=True,
        )
        cfg = RandomWalkConfig(
            walks_per_vertex=30000,
            walk_length=2,
            seed=0,
            mode=WalkMode.TEMPORAL,
            start_vertices=np.asarray([0]),
        )
        corpus = generate_walks(g, cfg)
        freq = np.bincount(corpus.walks[:, 1], minlength=4)[1:] / 30000
        np.testing.assert_allclose(freq, 1 / 3, atol=0.02)


class TestCoverage:
    def test_connected_graph_full_coverage(self):
        g = cycle_graph(20)
        corpus = generate_walks(g, RandomWalkConfig(walks_per_vertex=2, walk_length=10, seed=0))
        assert corpus.coverage() == 1.0

    def test_complete_graph_token_balance(self):
        g = complete_graph(10)
        corpus = generate_walks(g, RandomWalkConfig(walks_per_vertex=20, walk_length=20, seed=0))
        counts = corpus.token_counts()
        assert counts.min() > 0.7 * counts.mean()
