"""Direct tests of the batched segment binary search (walk-engine core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.walks.engine import _segment_searchsorted


class TestSegmentSearchsorted:
    def test_matches_numpy_single_segment(self):
        values = np.asarray([1.0, 3.0, 3.0, 7.0])
        for needle in (-1.0, 1.0, 3.0, 5.0, 7.0, 9.0):
            for side in ("left", "right"):
                got = _segment_searchsorted(
                    values,
                    np.asarray([0]),
                    np.asarray([4]),
                    np.asarray([needle]),
                    side=side,
                )[0]
                assert got == np.searchsorted(values, needle, side=side)

    def test_offsets_applied_per_segment(self):
        # Two segments: [10, 20, 30] and [5, 15].
        values = np.asarray([10.0, 20.0, 30.0, 5.0, 15.0])
        starts = np.asarray([0, 3])
        stops = np.asarray([3, 5])
        needles = np.asarray([20.0, 10.0])
        got = _segment_searchsorted(values, starts, stops, needles, side="right")
        assert got.tolist() == [2, 4]  # within-seg insertion + offset

    def test_empty_segment(self):
        values = np.asarray([1.0, 2.0])
        got = _segment_searchsorted(
            values, np.asarray([1]), np.asarray([1]), np.asarray([5.0])
        )
        assert got[0] == 1

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            _segment_searchsorted(
                np.asarray([1.0]),
                np.asarray([0]),
                np.asarray([1]),
                np.asarray([0.5]),
                side="middle",
            )

    @given(
        st.lists(
            st.lists(st.integers(-20, 20), min_size=0, max_size=8),
            min_size=1,
            max_size=6,
        ),
        st.lists(st.integers(-25, 25), min_size=1, max_size=6),
        st.sampled_from(["left", "right"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_per_segment_numpy(self, segments, raw_needles, side):
        """Against the per-segment np.searchsorted oracle."""
        sorted_segments = [np.sort(np.asarray(s, dtype=np.float64)) for s in segments]
        flat = (
            np.concatenate(sorted_segments)
            if any(len(s) for s in sorted_segments)
            else np.empty(0)
        )
        bounds = np.cumsum([0] + [len(s) for s in sorted_segments])
        queries = []
        for i, needle in enumerate(raw_needles):
            seg = i % len(sorted_segments)
            queries.append((seg, float(needle)))
        starts = np.asarray([bounds[s] for s, _ in queries], dtype=np.int64)
        stops = np.asarray([bounds[s + 1] for s, _ in queries], dtype=np.int64)
        needles = np.asarray([v for _, v in queries])
        got = _segment_searchsorted(flat, starts, stops, needles, side=side)
        for j, (seg, needle) in enumerate(queries):
            expected = bounds[seg] + np.searchsorted(
                sorted_segments[seg], needle, side=side
            )
            assert got[j] == expected
