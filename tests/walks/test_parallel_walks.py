"""Tests for multi-process walk generation."""

import numpy as np
import pytest

from repro.graph.generators import planted_partition
from repro.walks.engine import RandomWalkConfig, WalkMode, generate_walks


@pytest.fixture(scope="module")
def graph():
    return planted_partition(n=60, groups=3, alpha=0.5, inter_edges=10, seed=0)


class TestParallelWalks:
    def test_same_shape_as_serial(self, graph):
        cfg = RandomWalkConfig(walks_per_vertex=4, walk_length=12, seed=0)
        serial = generate_walks(graph, cfg, workers=1)
        par = generate_walks(graph, cfg, workers=3)
        assert par.walks.shape == serial.walks.shape
        assert par.num_vertices == serial.num_vertices

    def test_walks_valid(self, graph):
        cfg = RandomWalkConfig(walks_per_vertex=3, walk_length=10, seed=0)
        corpus = generate_walks(graph, cfg, workers=4)
        arcs = set(graph.arcs())
        for walk in corpus.sentences():
            for u, v in zip(walk[:-1], walk[1:]):
                assert (int(u), int(v)) in arcs

    def test_reproducible_same_workers(self, graph):
        cfg = RandomWalkConfig(walks_per_vertex=3, walk_length=10, seed=42)
        a = generate_walks(graph, cfg, workers=2)
        b = generate_walks(graph, cfg, workers=2)
        np.testing.assert_array_equal(a.walks, b.walks)

    def test_start_vertices_respected(self, graph):
        cfg = RandomWalkConfig(
            walks_per_vertex=5,
            walk_length=6,
            seed=0,
            start_vertices=np.asarray([0, 1]),
        )
        corpus = generate_walks(graph, cfg, workers=2)
        assert corpus.num_walks == 10
        assert set(corpus.walks[:, 0].tolist()) == {0, 1}

    def test_weighted_mode_parallel(self):
        from repro.graph.core import Graph

        g = Graph(4, [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 2.0), (3, 0, 1.0)])
        cfg = RandomWalkConfig(
            walks_per_vertex=3, walk_length=8, seed=0, mode=WalkMode.WEIGHTED
        )
        corpus = generate_walks(g, cfg, workers=2)
        assert corpus.num_walks == 12

    def test_coverage_comparable(self, graph):
        cfg = RandomWalkConfig(walks_per_vertex=4, walk_length=15, seed=0)
        par = generate_walks(graph, cfg, workers=3)
        assert par.coverage() == 1.0
