"""Frontier-batched walk stepping must be bitwise-identical to the
masked reference loop (on dead-end-free graphs) and the shared-memory
parallel path bitwise-identical to the legacy graph-pickling chunk
worker — the contracts the PR7 batching rests on."""

import numpy as np
import pytest

from repro.graph.core import EdgeList, Graph
from repro.walks.engine import (
    PAD,
    RandomWalkConfig,
    WalkMode,
    _chunk_task,
    _chunk_tasks,
    _export_walk_arrays,
    _make_stepper,
    _step_walks_dense,
    _step_walks_masked,
    generate_walks,
)


def _dense_graph(n=120, out_deg=5, seed=0, weights=False, vweights=False):
    """Every vertex has out-arcs, so no walk can ever die."""
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
    dst = rng.integers(0, n, src.size).astype(np.int64)
    edges = EdgeList(
        src=src,
        dst=dst,
        weights=(rng.random(src.size) + 0.05) if weights else None,
    )
    return Graph(
        n,
        edges,
        directed=True,
        vertex_weights=(rng.random(n) + 0.05) if vweights else None,
    )


def _run_both(g, mode, **cfg_kwargs):
    """(masked, dense) walk matrices from identically seeded streams."""
    config = RandomWalkConfig(mode=mode, **cfg_kwargs)
    stepper = _make_stepper(g, mode, config)
    starts = np.tile(np.arange(g.n, dtype=np.int64), 3)
    length = 25

    masked = np.full((starts.shape[0], length), PAD, dtype=np.int64)
    masked[:, 0] = starts
    _step_walks_masked(stepper, starts, masked, np.random.default_rng(11))

    stepper2 = _make_stepper(g, mode, config)
    dense = _step_walks_dense(stepper2, starts, length, np.random.default_rng(11))
    return masked, dense


class TestDenseMatchesMasked:
    """Satellite (c): frontier-batched == pre-batching serial reference."""

    def test_uniform(self):
        masked, dense = _run_both(_dense_graph(), WalkMode.UNIFORM)
        np.testing.assert_array_equal(dense, masked)

    def test_weighted_alias(self):
        g = _dense_graph(weights=True)
        masked, dense = _run_both(g, WalkMode.WEIGHTED)
        np.testing.assert_array_equal(dense, masked)

    def test_vertex_weighted_alias(self):
        g = _dense_graph(vweights=True)
        masked, dense = _run_both(g, WalkMode.VERTEX_WEIGHTED)
        np.testing.assert_array_equal(dense, masked)

    def test_node2vec(self):
        masked, dense = _run_both(
            _dense_graph(), WalkMode.NODE2VEC, p=0.5, q=2.0
        )
        np.testing.assert_array_equal(dense, masked)

    def test_node2vec_extreme_bias(self):
        # Heavy rejection pressure (many rounds) must not desync streams.
        masked, dense = _run_both(
            _dense_graph(out_deg=3), WalkMode.NODE2VEC, p=8.0, q=0.125
        )
        np.testing.assert_array_equal(dense, masked)


class TestExportDecidesDense:
    def test_dense_ok_for_full_out_degree(self):
        from repro.parallel.shm import shared_arrays

        with shared_arrays() as scope:
            _specs, dense_ok = _export_walk_arrays(
                _dense_graph(), WalkMode.UNIFORM, scope
            )
        assert dense_ok

    def test_dead_ends_disable_dense(self):
        from repro.parallel.shm import shared_arrays

        g = Graph(4, [(0, 1), (1, 2), (2, 3)], directed=True)  # 3 is a sink
        with shared_arrays() as scope:
            _specs, dense_ok = _export_walk_arrays(g, WalkMode.UNIFORM, scope)
        assert not dense_ok

    def test_temporal_never_dense(self):
        from repro.parallel.shm import shared_arrays

        rng = np.random.default_rng(0)
        src = np.repeat(np.arange(20, dtype=np.int64), 4)
        dst = rng.integers(0, 20, src.size).astype(np.int64)
        g = Graph(
            20,
            EdgeList(src=src, dst=dst, times=rng.random(src.size)),
            directed=True,
        )
        with shared_arrays() as scope:
            _specs, dense_ok = _export_walk_arrays(g, WalkMode.TEMPORAL, scope)
        assert not dense_ok


class TestParallelMatchesLegacyChunks:
    """The shm fan-out must reproduce the legacy chunk worker bit for bit
    for a fixed (seed, workers) — batching is an implementation detail,
    not an output change."""

    @pytest.mark.parametrize(
        "mode,kwargs,weights,vweights",
        [
            (WalkMode.UNIFORM, {}, False, False),
            (WalkMode.WEIGHTED, {}, True, False),
            (WalkMode.VERTEX_WEIGHTED, {}, False, True),
            (WalkMode.NODE2VEC, {"p": 0.5, "q": 2.0}, False, False),
        ],
    )
    def test_modes_bitwise(self, mode, kwargs, weights, vweights):
        g = _dense_graph(n=80, weights=weights, vweights=vweights)
        cfg = RandomWalkConfig(
            walks_per_vertex=3, walk_length=15, mode=mode, seed=7, **kwargs
        )
        got = generate_walks(g, cfg, workers=2).walks
        legacy = np.vstack([_chunk_task(t) for t in _chunk_tasks(g, cfg, 2)])
        np.testing.assert_array_equal(got, legacy)

    def test_dead_end_fallback_bitwise(self):
        # Some vertices have no out-arcs: workers must take the masked
        # fallback and still match the legacy result exactly.
        rng = np.random.default_rng(3)
        src = np.repeat(np.arange(40, dtype=np.int64), 3)
        dst = rng.integers(0, 80, src.size).astype(np.int64)  # 40..79 are sinks
        g = Graph(80, EdgeList(src=src, dst=dst), directed=True)
        cfg = RandomWalkConfig(walks_per_vertex=3, walk_length=15, seed=7)
        got = generate_walks(g, cfg, workers=2).walks
        legacy = np.vstack([_chunk_task(t) for t in _chunk_tasks(g, cfg, 2)])
        np.testing.assert_array_equal(got, legacy)

    def test_temporal_bitwise(self):
        rng = np.random.default_rng(5)
        src = np.repeat(np.arange(50, dtype=np.int64), 5)
        dst = rng.integers(0, 50, src.size).astype(np.int64)
        g = Graph(
            50,
            EdgeList(src=src, dst=dst, times=rng.random(src.size) * 10),
            directed=True,
        )
        cfg = RandomWalkConfig(
            walks_per_vertex=3,
            walk_length=15,
            mode=WalkMode.TEMPORAL,
            time_window=4.0,
            seed=7,
        )
        got = generate_walks(g, cfg, workers=2).walks
        legacy = np.vstack([_chunk_task(t) for t in _chunk_tasks(g, cfg, 2)])
        np.testing.assert_array_equal(got, legacy)

    def test_out_of_range_start_raises_in_parent(self):
        g = _dense_graph(n=10)
        cfg = RandomWalkConfig(
            walks_per_vertex=2,
            walk_length=5,
            seed=0,
            start_vertices=np.asarray([0, 99]),
        )
        with pytest.raises(ValueError, match="start vertex out of range"):
            generate_walks(g, cfg, workers=2)
