"""Chaos: a killed shard worker must not change the merged corpus.

Shard tasks are idempotent — every random draw is a pure function of
(seed, walk id, step), and workers only *read* the mmap'd store — so
the supervisor can respawn a killed worker and replay its task with no
effect on the output bytes. That property is what makes crash recovery
free on the sharded path; this test kills a real worker process
mid-round and asserts the corpus is bitwise-identical to an
undisturbed run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import community_benchmark
from repro.graph.store import GraphStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder, use
from repro.parallel.shm import SHM_AVAILABLE
from repro.pipeline.context import ExecutionContext
from repro.resilience.chaos import FaultInjector
from repro.resilience.supervisor import SupervisorConfig
from repro.walks.engine import RandomWalkConfig
from repro.walks.sharded import generate_walks_sharded

from tests.parallel.test_shm import shm_entries

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="platform has no shared memory"
)

FAST = SupervisorConfig(worker_deadline=10.0, max_respawns=5, poll_interval=0.02)


@pytest.fixture()
def no_leaks():
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture()
def recording():
    registry = MetricsRegistry()
    with use(Recorder(registry)):
        yield registry


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    graph = community_benchmark(0.7, n=120, groups=4, inter_edges=60, seed=11)
    return GraphStore.build(
        graph, tmp_path_factory.mktemp("chaos") / "store", shards=4, seed=3
    )


@pytest.mark.chaos
def test_killed_worker_resumes_bitwise_identical(
    store, tmp_path, no_leaks, recording
):
    config = RandomWalkConfig(walks_per_vertex=2, walk_length=16, seed=21)
    undisturbed = generate_walks_sharded(store, config).walks

    ctx = ExecutionContext(
        workers=2,
        supervisor=FAST,
        fault_injector=lambda fn: FaultInjector(
            fn,
            exit_on_calls={1},
            only_in_subprocess=True,
            once_marker=tmp_path / "fired",
        ),
    )
    survived = generate_walks_sharded(store, config, context=ctx).walks

    assert (tmp_path / "fired").exists(), "fault never fired — test proved nothing"
    counters = recording.snapshot()["counters"]
    assert counters["supervisor.respawns"] >= 1
    assert np.array_equal(undisturbed, survived), (
        "corpus changed after a worker kill + respawn; shard tasks are "
        "supposed to be idempotent replays"
    )
